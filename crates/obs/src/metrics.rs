//! Metrics registry: named counters, gauges and log2-bucketed
//! histograms, collected into an ordered [`Snapshot`] that serializes
//! to JSON. Subsystems expose their counters by implementing
//! [`MetricSource`]; the simulator walks every source once per
//! snapshot, so there is no sampling overhead on the simulation loop
//! itself.

use crate::json;

/// A histogram whose bucket `k` counts values with `k` significant
/// bits (bucket 0 counts zeros) — the natural shape for operand-width
/// and latency distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Records `count` occurrences of values with `bits` significant
    /// bits directly into bucket `bits`, contributing `bits * count` to
    /// the sum — so `mean()` reads as the mean bit-width. This is the
    /// import path for width histograms collected elsewhere (the
    /// simulator's Figure 1 operand-width distribution), where the
    /// per-bucket counts are known but the original values are not.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64` (a `u64` has at most 64 significant bits).
    pub fn record_bits(&mut self, bits: usize, count: u64) {
        assert!(bits <= 64, "a u64 value has at most 64 significant bits");
        self.buckets[bits] += count;
        self.count += count;
        self.sum = self.sum.saturating_add((bits as u64).saturating_mul(count));
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Count in bucket `k` (values with `k` significant bits).
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k]
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Index of the highest non-empty bucket, if any value was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A point-in-time or derived value.
    Gauge(f64),
    /// A [`Log2Histogram`] (boxed: its fixed bucket array dwarfs the
    /// scalar variants).
    Histogram(Box<Log2Histogram>),
}

/// Anything that can contribute metrics to a [`Registry`].
pub trait MetricSource {
    /// Registers this source's metrics.
    fn collect(&self, registry: &mut Registry);
}

/// An ordered, dot-namespaced collection point for metrics.
///
/// ```
/// use nwo_obs::{MetricValue, Registry};
/// let mut r = Registry::new();
/// r.group("mem", |r| {
///     r.counter("hits", 10);
///     r.gauge("miss_rate", 0.25);
/// });
/// let snap = r.finish();
/// assert_eq!(snap.counter("mem.hits"), Some(10));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    prefix: String,
    entries: Vec<(String, MetricValue)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn qualify(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.prefix, name)
        }
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        let key = self.qualify(name);
        self.entries.push((key, MetricValue::Counter(value)));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let key = self.qualify(name);
        self.entries.push((key, MetricValue::Gauge(value)));
    }

    /// Registers a histogram.
    pub fn histogram(&mut self, name: &str, value: Log2Histogram) {
        let key = self.qualify(name);
        self.entries
            .push((key, MetricValue::Histogram(Box::new(value))));
    }

    /// Runs `f` with `name` appended to the namespace prefix.
    pub fn group(&mut self, name: &str, f: impl FnOnce(&mut Registry)) {
        let saved = std::mem::take(&mut self.prefix);
        self.prefix = if saved.is_empty() {
            name.to_string()
        } else {
            format!("{saved}.{name}")
        };
        f(self);
        self.prefix = saved;
    }

    /// Collects a [`MetricSource`] under the group `name`.
    pub fn source(&mut self, name: &str, source: &dyn MetricSource) {
        self.group(name, |r| source.collect(r));
    }

    /// Finalizes into an immutable snapshot.
    pub fn finish(self) -> Snapshot {
        Snapshot {
            entries: self.entries,
        }
    }
}

/// An immutable, ordered set of named metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// All entries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric was registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a metric up by full dotted name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The value of a counter metric.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of a gauge metric.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Serializes to a flat JSON object, one key per metric, in
    /// registration order. Histograms become
    /// `{"count":..,"sum":..,"mean":..,"buckets":[..]}` with the bucket
    /// array trimmed to the highest non-empty bucket.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.entries.len().max(1));
        out.push_str("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            out.push_str("  ");
            json::write_str(&mut out, key);
            out.push_str(": ");
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&v.to_string());
                }
                MetricValue::Gauge(v) => json::write_f64(&mut out, *v),
                MetricValue::Histogram(h) => {
                    out.push_str("{\"count\":");
                    out.push_str(&h.count().to_string());
                    out.push_str(",\"sum\":");
                    out.push_str(&h.sum().to_string());
                    out.push_str(",\"mean\":");
                    json::write_f64(&mut out, h.mean());
                    out.push_str(",\"buckets\":[");
                    let last = h.max_bucket().map_or(0, |b| b + 1);
                    for k in 0..last {
                        if k > 0 {
                            out.push(',');
                        }
                        out.push_str(&h.bucket(k).to_string());
                    }
                    out.push_str("]}");
                }
            }
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }

    /// Serializes to one compact JSON line (no internal newlines), the
    /// shape interval-stats streams want: one snapshot per line of a
    /// `.jsonl` file.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(32 * self.entries.len().max(1));
        out.push('{');
        for (i, (key, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, key);
            out.push(':');
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => json::write_f64(&mut out, *v),
                MetricValue::Histogram(h) => {
                    out.push_str("{\"count\":");
                    out.push_str(&h.count().to_string());
                    out.push_str(",\"sum\":");
                    out.push_str(&h.sum().to_string());
                    out.push_str(",\"mean\":");
                    json::write_f64(&mut out, h.mean());
                    out.push_str(",\"buckets\":[");
                    let last = h.max_bucket().map_or(0, |b| b + 1);
                    for k in 0..last {
                        if k > 0 {
                            out.push(',');
                        }
                        out.push_str(&h.bucket(k).to_string());
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_histogram_buckets_by_significant_bits() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 1); // 4
        assert_eq!(h.bucket(64), 1); // u64::MAX
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_bucket(), Some(64));
    }

    #[test]
    fn record_bits_matches_record() {
        let mut by_value = Log2Histogram::new();
        by_value.record(0);
        by_value.record(1);
        by_value.record(0b101); // 3 significant bits
        by_value.record(0b110);
        let mut by_bits = Log2Histogram::new();
        by_bits.record_bits(0, 1);
        by_bits.record_bits(1, 1);
        by_bits.record_bits(3, 2);
        for k in 0..=64 {
            assert_eq!(by_value.bucket(k), by_bits.bucket(k), "bucket {k}");
        }
        assert_eq!(by_bits.count(), 4);
        // Sum semantics differ by design: record_bits sums bit-widths
        // (0 + 1 + 3 + 3).
        assert_eq!(by_bits.sum(), 7);
        assert!((by_bits.mean() - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn record_bits_rejects_impossible_widths() {
        Log2Histogram::new().record_bits(65, 1);
    }

    #[test]
    fn registry_namespaces_nest() {
        let mut r = Registry::new();
        r.counter("top", 1);
        r.group("a", |r| {
            r.counter("x", 2);
            r.group("b", |r| r.gauge("y", 0.5));
            r.counter("z", 3);
        });
        let snap = r.finish();
        assert_eq!(snap.counter("top"), Some(1));
        assert_eq!(snap.counter("a.x"), Some(2));
        assert_eq!(snap.gauge("a.b.y"), Some(0.5));
        assert_eq!(snap.counter("a.z"), Some(3));
        assert_eq!(snap.len(), 4);
    }

    #[test]
    fn snapshot_json_is_parseable_and_ordered() {
        let mut r = Registry::new();
        r.counter("z.last", 9);
        r.gauge("bad", f64::NAN);
        let mut h = Log2Histogram::new();
        h.record(5);
        r.histogram("h", h);
        let snap = r.finish();
        let text = snap.to_json();
        let v = crate::json::parse(&text).expect("snapshot JSON parses");
        assert_eq!(v.get("z.last").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("bad"), Some(&crate::json::JsonValue::Null));
        assert_eq!(v.get("h").unwrap().get("count").unwrap().as_u64(), Some(1));
        // Registration order is preserved in the serialized text.
        assert!(text.find("z.last").unwrap() < text.find("bad").unwrap());
    }

    #[test]
    fn sources_collect_under_their_group() {
        struct Fake;
        impl MetricSource for Fake {
            fn collect(&self, registry: &mut Registry) {
                registry.counter("n", 7);
            }
        }
        let mut r = Registry::new();
        r.source("fake", &Fake);
        assert_eq!(r.finish().counter("fake.n"), Some(7));
    }
}
