//! Stall-cycle attribution: every cycle the commit stage retires fewer
//! than `commit_width` instructions, the lost slots are charged to
//! exactly one cause. Because *every* lost slot is charged somewhere,
//! the breakdown satisfies the conservation law
//!
//! ```text
//! sum(slots) == commit_width * cycles - committed
//! ```
//!
//! which the test suite asserts for every run. The taxonomy follows a
//! top-down CPI-stack: the oldest instruction in the window (or the
//! empty window itself) names the bottleneck for the whole cycle.

use crate::metrics::{MetricSource, Registry};

/// Why commit slots were lost in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Window empty: fetch is waiting on an instruction-cache miss.
    IcacheMiss,
    /// Window empty: fetch is restarting after a branch mispredict.
    MispredictRecovery,
    /// Window empty for other front-end reasons (fill latency,
    /// fetch/dispatch width).
    Frontend,
    /// Oldest instruction is executing and the window is full behind it.
    RuuFull,
    /// Oldest instruction is executing and the load/store queue is full.
    LsqFull,
    /// Oldest instruction is a load waiting on a data-cache miss.
    DcacheMiss,
    /// Oldest instruction is ready but lost issue-slot / ALU arbitration.
    FuContention,
    /// Oldest instruction is waiting for source operands.
    TrueDependency,
    /// Oldest instruction was squashed by a width misprediction and is
    /// serving its replay penalty.
    ReplayPenalty,
    /// Oldest instruction is mid-execution (multi-cycle op or in-order
    /// commit latency).
    ExecLatency,
    /// Program finished: the machine is draining (includes the partial
    /// slots of the halt cycle itself).
    Drain,
}

impl StallCause {
    /// Every cause, in display order.
    pub const ALL: [StallCause; 11] = [
        StallCause::IcacheMiss,
        StallCause::MispredictRecovery,
        StallCause::Frontend,
        StallCause::RuuFull,
        StallCause::LsqFull,
        StallCause::DcacheMiss,
        StallCause::FuContention,
        StallCause::TrueDependency,
        StallCause::ReplayPenalty,
        StallCause::ExecLatency,
        StallCause::Drain,
    ];

    /// Stable machine-readable name (used in JSON and CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::IcacheMiss => "icache",
            StallCause::MispredictRecovery => "mispredict",
            StallCause::Frontend => "frontend",
            StallCause::RuuFull => "ruu_full",
            StallCause::LsqFull => "lsq_full",
            StallCause::DcacheMiss => "dcache",
            StallCause::FuContention => "fu",
            StallCause::TrueDependency => "dep",
            StallCause::ReplayPenalty => "replay",
            StallCause::ExecLatency => "exec",
            StallCause::Drain => "drain",
        }
    }

    fn index(self) -> usize {
        StallCause::ALL
            .iter()
            .position(|&c| c == self)
            .expect("cause listed in ALL")
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lost commit slots accumulated per [`StallCause`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    slots: [u64; StallCause::ALL.len()],
}

impl StallBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `slots` lost commit slots to `cause`.
    pub fn charge(&mut self, cause: StallCause, slots: u64) {
        self.slots[cause.index()] += slots;
    }

    /// Slots charged to `cause` so far.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.slots[cause.index()]
    }

    /// Total lost slots across all causes.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Fraction of all lost slots charged to `cause` (0 when none).
    pub fn fraction(&self, cause: StallCause) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(cause) as f64 / total as f64
        }
    }

    /// Iterates `(cause, slots)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a += b;
        }
    }
}

impl MetricSource for StallBreakdown {
    fn collect(&self, registry: &mut Registry) {
        for (cause, slots) in self.iter() {
            registry.counter(cause.name(), slots);
        }
        registry.counter("total", self.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_conserve() {
        let mut b = StallBreakdown::new();
        b.charge(StallCause::DcacheMiss, 3);
        b.charge(StallCause::DcacheMiss, 1);
        b.charge(StallCause::Drain, 2);
        assert_eq!(b.get(StallCause::DcacheMiss), 4);
        assert_eq!(b.total(), 6);
        assert!((b.fraction(StallCause::Drain) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = StallCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StallCause::ALL.len());
    }

    #[test]
    fn merge_adds_per_cause() {
        let mut a = StallBreakdown::new();
        a.charge(StallCause::Frontend, 1);
        let mut b = StallBreakdown::new();
        b.charge(StallCause::Frontend, 2);
        b.charge(StallCause::ExecLatency, 5);
        a.merge(&b);
        assert_eq!(a.get(StallCause::Frontend), 3);
        assert_eq!(a.get(StallCause::ExecLatency), 5);
    }

    #[test]
    fn collects_into_registry() {
        let mut b = StallBreakdown::new();
        b.charge(StallCause::RuuFull, 7);
        let mut r = Registry::new();
        r.source("stall", &b);
        let snap = r.finish();
        assert_eq!(snap.counter("stall.ruu_full"), Some(7));
        assert_eq!(snap.counter("stall.total"), Some(7));
    }
}
