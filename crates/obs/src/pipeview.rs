//! Konata-style text pipeline diagram: one row per committed
//! instruction, one column per cycle.
//!
//! Legend (also printed in the header):
//!
//! | char | meaning                                   |
//! |------|-------------------------------------------|
//! | `F`  | fetched into the instruction queue        |
//! | `D`  | dispatched (renamed) into the RUU         |
//! | `I`  | issued to a functional unit               |
//! | `p`  | issued inside a packed group              |
//! | `=`  | executing (between issue and writeback)   |
//! | `W`  | result written back                       |
//! | `C`  | committed                                 |
//! | `.`  | waiting in a queue                        |
//! | `>`  | row continues past the clipped window     |
//!
//! Rows of instructions that went through a replay squash are marked
//! with a trailing `*` before the disassembly.

use crate::trace::CommitRecord;

/// Maximum number of cycle columns rendered before a row is clipped.
const MAX_COLS: u64 = 96;

/// Renders commit records as a text pipeline diagram. `disasm` maps
/// `(pc, raw encoding)` to display text (pass `|_, raw| format!("{raw:08x}")`
/// if no decoder is at hand).
pub fn render(records: &[CommitRecord], disasm: &dyn Fn(u64, u32) -> String) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    if records.is_empty() {
        out.push_str("pipeview: no committed instructions traced\n");
        return out;
    }
    let base = records.iter().map(|r| r.fetched_at).min().unwrap_or(0);
    let last = records.iter().map(|r| r.committed_at).max().unwrap_or(base);
    let span = (last - base + 1).min(MAX_COLS);
    let _ = writeln!(
        out,
        "pipeview: {} instructions, cycles {}..={} (F fetch, D dispatch, I issue, p packed, = exec, W writeback, C commit, * replayed)",
        records.len(),
        base,
        last,
    );

    // Cycle ruler, marked every 10 columns.
    let label_width = 4 + 1 + 8 + 2; // seq + space + pc + gap
    let mut ruler = " ".repeat(label_width);
    let mut col = 0;
    while col < span {
        let cycle = base + col;
        if col % 10 == 0 {
            let mark = cycle.to_string();
            ruler.push_str(&mark);
            // Skip the columns the label occupied (at least 1).
            col += mark.len() as u64;
        } else {
            ruler.push(' ');
            col += 1;
        }
    }
    out.push_str(ruler.trim_end());
    out.push('\n');

    for r in records {
        let _ = write!(out, "{:>4} {:08x}  ", r.seq, r.pc);
        let mut clipped = false;
        for col in 0..span {
            let t = base + col;
            // A row that lives past the window gets the continuation
            // marker even if it never started inside it.
            if col == span - 1 && r.committed_at > base + span - 1 {
                clipped = true;
                out.push('>');
                break;
            }
            if t > r.committed_at {
                out.push(' ');
                continue;
            }
            if t < r.fetched_at {
                out.push(' ');
                continue;
            }
            let c = if t == r.committed_at {
                'C'
            } else if t == r.completed_at {
                'W'
            } else if t == r.issued_at {
                if r.packed {
                    'p'
                } else {
                    'I'
                }
            } else if t == r.dispatched_at {
                'D'
            } else if t == r.fetched_at {
                'F'
            } else if t > r.issued_at && t < r.completed_at {
                '='
            } else {
                '.'
            };
            out.push(c);
        }
        if clipped {
            // Nothing more to draw; the marker already says so.
        }
        while out.ends_with(' ') {
            out.pop();
        }
        let _ = write!(
            out,
            "  {}{}",
            if r.replayed { "*" } else { "" },
            disasm(r.pc, r.raw)
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, f: u64, d: u64, i: u64, w: u64, c: u64) -> CommitRecord {
        CommitRecord {
            seq,
            pc: 0x1000 + seq * 4,
            raw: 0,
            fetched_at: f,
            dispatched_at: d,
            issued_at: i,
            completed_at: w,
            committed_at: c,
            packed: false,
            replayed: false,
        }
    }

    #[test]
    fn renders_stage_letters_in_order() {
        let rows = [rec(0, 1, 2, 3, 5, 6)];
        let text = render(&rows, &|_, _| "addq".to_string());
        let line = text.lines().last().unwrap();
        assert!(line.contains("FDI=WC"), "got: {line}");
        assert!(line.ends_with("addq"));
    }

    #[test]
    fn marks_packed_and_replayed() {
        let mut r = rec(0, 1, 2, 4, 5, 6);
        r.packed = true;
        r.replayed = true;
        let text = render(&[r], &|_, _| "subq".to_string());
        let line = text.lines().last().unwrap();
        assert!(line.contains('p'), "packed issue marker missing: {line}");
        assert!(line.contains("*subq"), "replay marker missing: {line}");
    }

    #[test]
    fn waiting_cycles_render_as_dots() {
        // Dispatch at 2, issue at 6: cycles 3-5 wait in the window.
        let text = render(&[rec(0, 1, 2, 6, 7, 8)], &|_, _| String::new());
        let line = text.lines().last().unwrap();
        assert!(line.contains("FD...IWC"), "got: {line}");
    }

    #[test]
    fn clips_very_long_rows() {
        let text = render(&[rec(0, 1, 2, 3, 4, 500)], &|_, _| String::new());
        let line = text.lines().last().unwrap();
        assert!(line.contains('>'), "expected clip marker: {line}");
    }

    #[test]
    fn rows_starting_past_the_window_still_marked() {
        // Row 1 begins after row 0's window has been clipped away; it
        // must carry the continuation marker, not render blank.
        let rows = [rec(0, 1, 2, 3, 4, 5), rec(1, 200, 201, 202, 203, 204)];
        let text = render(&rows, &|_, _| String::new());
        let line = text.lines().last().unwrap();
        assert!(line.contains('>'), "expected clip marker: {line}");
    }

    #[test]
    fn empty_input_is_graceful() {
        let text = render(&[], &|_, _| String::new());
        assert!(text.contains("no committed instructions"));
    }
}
