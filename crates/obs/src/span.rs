//! Hierarchical wall-time span profiling (`--profile`).
//!
//! A [`span`] opens a named phase and returns a [`SpanGuard`]; dropping
//! the guard closes the phase and records its wall time into a
//! process-wide aggregate keyed by the `/`-joined path of open spans on
//! the current thread (`"sim/measured-run/oracle-step"`). Spans nest
//! per thread, so worker-pool phases aggregate under their worker's
//! job span while the main thread's phases aggregate under its own.
//!
//! The profiler is **off by default** and costs one relaxed atomic load
//! per call site until [`enable`] is called — hot paths can therefore
//! stay instrumented unconditionally. Once enabled:
//!
//! * every span drop updates the aggregate ([`aggregate`], a
//!   [`ProfileAgg`] snapshot usable for before/after diffs), and
//! * with event capture on (`enable(true)`), every span additionally
//!   records a timeline event for Chrome Trace Event export
//!   ([`report`] → [`ProfileReport::to_chrome_trace`]), bounded at
//!   [`MAX_EVENTS`] to keep memory finite.
//!
//! Phases that are far too fine-grained for a guard per occurrence
//! (e.g. a per-commit oracle check) batch their own timing and flush it
//! once via [`record_external`]. Named side counts (cache hits,
//! instructions warmed) attach to the innermost open span via [`add`].
//!
//! Enabling is one-way for the life of the process: the profiler is a
//! process-wide singleton and racing a disable against in-flight guards
//! would tear half-recorded spans.

use crate::profile::{ProfileAgg, ProfileReport, SpanEvent, SpanStat};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Cap on captured timeline events; beyond it spans still aggregate
/// but no longer append events ([`ProfileReport::dropped_events`]
/// counts the overflow).
pub const MAX_EVENTS: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPTURE: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Aggregate + timeline state behind one mutex. Spans are coarse
/// (phases, jobs), so contention is negligible; the linear `stats`
/// scan is fine for the ~dozen distinct paths a run produces.
struct Inner {
    stats: Vec<(String, SpanStat)>,
    events: Vec<SpanEvent>,
    dropped_events: u64,
    epoch: Option<Instant>,
}

static INNER: Mutex<Inner> = Mutex::new(Inner {
    stats: Vec::new(),
    events: Vec::new(),
    dropped_events: 0,
    epoch: None,
});

thread_local! {
    /// Names of the spans currently open on this thread, outermost
    /// first — the source of every span's aggregate path.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Small dense thread id for trace events (0 = not yet assigned).
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// Turns the profiler on (idempotent; never turns it off). With
/// `capture_events` true, spans also record timeline events for Chrome
/// Trace export; repeated calls can upgrade aggregation-only profiling
/// to event capture but never downgrade it.
pub fn enable(capture_events: bool) {
    {
        let mut inner = INNER.lock().expect("profiler lock");
        if inner.epoch.is_none() {
            inner.epoch = Some(Instant::now());
        }
    }
    if capture_events {
        CAPTURE.store(true, Ordering::Release);
    }
    ENABLED.store(true, Ordering::Release);
}

/// True once [`enable`] has been called. The only cost an instrumented
/// call site pays while profiling is off.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// This thread's dense trace id, assigned on first use.
fn tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// The `/`-joined path of spans currently open on this thread.
fn current_path() -> String {
    STACK.with(|s| s.borrow().join("/"))
}

/// Opens a span named `name` nested under the spans already open on
/// this thread. Returns an inert guard (no clock read, no allocation)
/// while the profiler is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard::open(name, None)
}

/// Like [`span`], but the timeline event carries `label` as its display
/// name (aggregation still uses the static `name`, keeping the phase
/// key space small while the Chrome trace shows per-instance detail —
/// e.g. `sim-job` spans labeled with their benchmark).
pub fn labeled_span(name: &'static str, label: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard::open(name, Some(label.to_string()))
}

/// Adds `n` to the named counter of the innermost open span on this
/// thread (or of the root when no span is open). No-op while disabled.
pub fn add(counter: &'static str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    let path = current_path();
    let mut inner = INNER.lock().expect("profiler lock");
    let stat = entry(&mut inner.stats, &path);
    *stat.counters.entry(counter).or_insert(0) += n;
}

/// Records externally-batched timing as a child span `name` of the
/// innermost open span: `total_ns` of wall time over `count`
/// occurrences. For phases far too frequent for a guard each (a
/// per-commit oracle check, say) — the caller accumulates and flushes
/// once. Produces no timeline event. No-op while disabled.
pub fn record_external(name: &'static str, total_ns: u64, count: u64) {
    if !enabled() || (total_ns == 0 && count == 0) {
        return;
    }
    let mut path = current_path();
    if !path.is_empty() {
        path.push('/');
    }
    path.push_str(name);
    let mut inner = INNER.lock().expect("profiler lock");
    let stat = entry(&mut inner.stats, &path);
    stat.total_ns += total_ns;
    stat.count += count;
}

/// A snapshot of the aggregate (per-path wall time, counts, counters).
/// Cheap enough to take before and after a unit of work and diff with
/// [`ProfileAgg::since`].
pub fn aggregate() -> ProfileAgg {
    let inner = INNER.lock().expect("profiler lock");
    ProfileAgg::from_entries(inner.stats.iter().cloned())
}

/// The full profile: the aggregate plus the captured timeline events.
/// Draining — events (and the dropped-event count) are handed over and
/// cleared so repeated exports never duplicate them; the aggregate is
/// cumulative.
pub fn report() -> ProfileReport {
    let mut inner = INNER.lock().expect("profiler lock");
    ProfileReport {
        agg: ProfileAgg::from_entries(inner.stats.iter().cloned()),
        events: std::mem::take(&mut inner.events),
        dropped_events: std::mem::replace(&mut inner.dropped_events, 0),
    }
}

fn entry<'a>(stats: &'a mut Vec<(String, SpanStat)>, path: &str) -> &'a mut SpanStat {
    if let Some(i) = stats.iter().position(|(p, _)| p == path) {
        return &mut stats[i].1;
    }
    stats.push((path.to_string(), SpanStat::default()));
    &mut stats.last_mut().expect("just pushed").1
}

/// RAII guard for an open span: records the span's wall time (and,
/// with capture on, a timeline event) when dropped. Guards must drop
/// in LIFO order on their thread — the natural result of holding them
/// in scopes.
#[must_use = "a span measures nothing unless the guard lives across the phase"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    path: String,
    label: Option<String>,
    tid: u32,
    start: Instant,
}

impl SpanGuard {
    fn open(name: &'static str, label: Option<String>) -> SpanGuard {
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        let tid = tid();
        // Read the clock last so bookkeeping is excluded from the span.
        SpanGuard {
            active: Some(ActiveSpan {
                path,
                label,
                tid,
                start: Instant::now(),
            }),
        }
    }

    /// True when this guard is actually recording (the profiler was
    /// enabled when the span opened).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let mut inner = INNER.lock().expect("profiler lock");
        let stat = entry(&mut inner.stats, &active.path);
        stat.total_ns += dur_ns;
        stat.count += 1;
        if CAPTURE.load(Ordering::Relaxed) {
            if inner.events.len() < MAX_EVENTS {
                let start_ns = inner
                    .epoch
                    .and_then(|e| active.start.checked_duration_since(e))
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                let name = active.label.unwrap_or_else(|| {
                    active
                        .path
                        .rsplit('/')
                        .next()
                        .unwrap_or(&active.path)
                        .to_string()
                });
                inner.events.push(SpanEvent {
                    path: active.path,
                    name,
                    tid: active.tid,
                    start_ns,
                    dur_ns,
                });
            } else {
                inner.dropped_events += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test owns the global profiler lifecycle: the pre-enable
    /// check must run before anything enables, and keeping every
    /// global interaction in a single `#[test]` is what guarantees the
    /// ordering under parallel test execution.
    #[test]
    fn lifecycle_from_disabled_to_nested_recording() {
        let inert = span("never-recorded");
        assert!(!inert.is_recording(), "disabled profiler hands out no-ops");
        drop(inert);

        enable(true);
        assert!(enabled());
        {
            let _outer = span("ut-outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = labeled_span("ut-inner", "inner #0");
                add("ticks", 3);
                record_external("ut-ext", 500, 2);
            }
        }

        let agg = aggregate();
        let outer = agg.spans.get("ut-outer").expect("outer aggregated");
        let inner = agg
            .spans
            .get("ut-outer/ut-inner")
            .expect("inner nests under outer");
        let ext = agg
            .spans
            .get("ut-outer/ut-inner/ut-ext")
            .expect("external batch nests under the innermost span");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns, "child time <= parent");
        assert_eq!(inner.counters.get("ticks"), Some(&3));
        assert_eq!(ext.total_ns, 500);
        assert_eq!(ext.count, 2);
        assert!(agg.since(&agg).spans.is_empty(), "self-diff is empty");

        let first_report = report();
        let mine: Vec<_> = first_report
            .events
            .iter()
            .filter(|e| e.path.starts_with("ut-"))
            .collect();
        assert_eq!(mine.len(), 2, "one event per guard, none for external");
        let inner_ev = mine.iter().find(|e| e.path.ends_with("ut-inner")).unwrap();
        let outer_ev = mine.iter().find(|e| e.path == "ut-outer").unwrap();
        assert_eq!(inner_ev.name, "inner #0", "label overrides display name");
        assert!(inner_ev.start_ns >= outer_ev.start_ns);
        assert!(
            inner_ev.start_ns + inner_ev.dur_ns <= outer_ev.start_ns + outer_ev.dur_ns,
            "child interval is contained in the parent interval"
        );
        assert!(
            report().events.iter().all(|e| !e.path.starts_with("ut-")),
            "report drains captured events"
        );
    }
}
