//! Streaming pipeline trace: a [`TraceSink`] receives one
//! [`TraceEvent`] per pipeline action, so a multi-million-instruction
//! run can be traced in O(1) resident memory ([`JsonlSink`]) or with a
//! bounded in-memory window ([`RingSink`]).
//!
//! Events carry the raw 32-bit instruction encoding rather than a
//! decoded instruction so this crate stays dependency-free; consumers
//! that want mnemonics decode `raw` with the ISA crate.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Everything known about one committed instruction's trip through the
/// pipeline. Cycle fields satisfy
/// `fetched_at <= dispatched_at <= issued_at <= completed_at <= committed_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// Commit sequence number (0-based).
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// Raw 32-bit instruction encoding.
    pub raw: u32,
    /// Cycle the instruction entered the fetch queue.
    pub fetched_at: u64,
    /// Cycle it was renamed into the RUU.
    pub dispatched_at: u64,
    /// Cycle it issued to a functional unit.
    pub issued_at: u64,
    /// Cycle its result was written back.
    pub completed_at: u64,
    /// Cycle it retired.
    pub committed_at: u64,
    /// Issued as part of a packed group.
    pub packed: bool,
    /// Went through at least one replay squash.
    pub replayed: bool,
}

/// One pipeline event, emitted as it happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction entered the fetch queue.
    Fetch {
        /// Cycle of the event.
        cycle: u64,
        /// Instruction address.
        pc: u64,
        /// Raw 32-bit encoding.
        raw: u32,
        /// Fetched down a speculative (possibly wrong) path.
        spec: bool,
    },
    /// An instruction was renamed into the RUU.
    Dispatch {
        /// Cycle of the event.
        cycle: u64,
        /// Instruction address.
        pc: u64,
    },
    /// An instruction issued to a functional unit.
    Issue {
        /// Cycle of the event.
        cycle: u64,
        /// Instruction address.
        pc: u64,
        /// Issued inside a packed group.
        packed: bool,
        /// Issued as a width-speculative replay candidate.
        replay: bool,
    },
    /// A packed group was formed at issue.
    Pack {
        /// Cycle of the event.
        cycle: u64,
        /// PC of the group leader.
        leader_pc: u64,
        /// Number of operations sharing the ALU slot.
        members: u8,
        /// The group carries a width-speculated operand.
        replay: bool,
    },
    /// A width misprediction squashed a replay-speculated operation.
    ReplaySquash {
        /// Cycle of the event.
        cycle: u64,
        /// Instruction address.
        pc: u64,
        /// Cycles until the operation may issue again.
        penalty: u64,
    },
    /// An instruction's result was written back.
    Writeback {
        /// Cycle of the event.
        cycle: u64,
        /// Instruction address.
        pc: u64,
    },
    /// A mispredicted branch resolved; younger work was squashed.
    BranchMispredict {
        /// Cycle of the event.
        cycle: u64,
        /// Branch address.
        pc: u64,
        /// Correct target now being fetched.
        target: u64,
    },
    /// An instruction retired.
    Commit(CommitRecord),
}

impl TraceEvent {
    /// The event's cycle.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Dispatch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Pack { cycle, .. }
            | TraceEvent::ReplaySquash { cycle, .. }
            | TraceEvent::Writeback { cycle, .. }
            | TraceEvent::BranchMispredict { cycle, .. } => cycle,
            TraceEvent::Commit(ref record) => record.committed_at,
        }
    }

    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(96);
        match *self {
            TraceEvent::Fetch {
                cycle,
                pc,
                raw,
                spec,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"fetch\",\"cycle\":{cycle},\"pc\":{pc},\"raw\":{raw},\"spec\":{spec}}}"
                );
            }
            TraceEvent::Dispatch { cycle, pc } => {
                let _ = write!(s, "{{\"ev\":\"dispatch\",\"cycle\":{cycle},\"pc\":{pc}}}");
            }
            TraceEvent::Issue {
                cycle,
                pc,
                packed,
                replay,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"issue\",\"cycle\":{cycle},\"pc\":{pc},\"packed\":{packed},\"replay\":{replay}}}"
                );
            }
            TraceEvent::Pack {
                cycle,
                leader_pc,
                members,
                replay,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"pack\",\"cycle\":{cycle},\"leader_pc\":{leader_pc},\"members\":{members},\"replay\":{replay}}}"
                );
            }
            TraceEvent::ReplaySquash { cycle, pc, penalty } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"replay_squash\",\"cycle\":{cycle},\"pc\":{pc},\"penalty\":{penalty}}}"
                );
            }
            TraceEvent::Writeback { cycle, pc } => {
                let _ = write!(s, "{{\"ev\":\"writeback\",\"cycle\":{cycle},\"pc\":{pc}}}");
            }
            TraceEvent::BranchMispredict { cycle, pc, target } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"branch_mispredict\",\"cycle\":{cycle},\"pc\":{pc},\"target\":{target}}}"
                );
            }
            TraceEvent::Commit(r) => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"commit\",\"cycle\":{},\"seq\":{},\"pc\":{},\"raw\":{},\"fetched_at\":{},\"dispatched_at\":{},\"issued_at\":{},\"completed_at\":{},\"committed_at\":{},\"packed\":{},\"replayed\":{}}}",
                    r.committed_at,
                    r.seq,
                    r.pc,
                    r.raw,
                    r.fetched_at,
                    r.dispatched_at,
                    r.issued_at,
                    r.completed_at,
                    r.committed_at,
                    r.packed,
                    r.replayed
                );
            }
        }
        s
    }
}

/// Receives pipeline events as the simulation runs.
pub trait TraceSink {
    /// False when emitting would be wasted work; hot paths skip event
    /// construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn emit(&mut self, event: &TraceEvent);

    /// Flushes any buffered output.
    fn flush(&mut self) {}

    /// Commit records this sink retained in memory (empty for
    /// streaming sinks).
    fn retained(&self) -> Vec<CommitRecord> {
        Vec::new()
    }
}

/// Discards everything; the default sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Keeps a bounded window of commit records in memory, dropping other
/// event kinds. `keep_first` preserves the historic `trace_limit`
/// behaviour (the first N commits); `keep_last` keeps a sliding window
/// of the most recent N.
#[derive(Debug, Clone)]
pub struct RingSink {
    records: VecDeque<CommitRecord>,
    capacity: usize,
    keep_first: bool,
}

impl RingSink {
    /// Retains the first `capacity` commits.
    pub fn keep_first(capacity: usize) -> RingSink {
        RingSink {
            records: VecDeque::new(),
            capacity,
            keep_first: true,
        }
    }

    /// Retains the most recent `capacity` commits.
    pub fn keep_last(capacity: usize) -> RingSink {
        RingSink {
            records: VecDeque::new(),
            capacity,
            keep_first: false,
        }
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: &TraceEvent) {
        if let TraceEvent::Commit(record) = event {
            if self.records.len() < self.capacity {
                self.records.push_back(*record);
            } else if !self.keep_first && self.capacity > 0 {
                self.records.pop_front();
                self.records.push_back(*record);
            }
        }
    }

    fn retained(&self) -> Vec<CommitRecord> {
        self.records.iter().copied().collect()
    }
}

/// Streams every event as one JSON line to a writer, with internal
/// buffering: resident memory stays O(1) no matter how long the run.
pub struct JsonlSink<W: Write> {
    writer: Option<W>, // only None after into_inner
    buffer: String,
    events: u64,
}

/// Internal buffer size at which [`JsonlSink`] writes through.
const JSONL_FLUSH_BYTES: usize = 64 * 1024;

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncates) a `.jsonl` trace file.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Some(writer),
            buffer: String::with_capacity(JSONL_FLUSH_BYTES + 256),
            events: 0,
        }
    }

    /// Number of events emitted so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Appends one pre-serialized JSON line (without its trailing
    /// newline), counting it as an event. This lets non-[`TraceEvent`]
    /// streams — interval metric snapshots, for instance — reuse the
    /// sink's buffering and flush behaviour.
    pub fn write_line(&mut self, line: &str) {
        self.buffer.push_str(line);
        self.buffer.push('\n');
        self.events += 1;
        if self.buffer.len() >= JSONL_FLUSH_BYTES {
            self.write_through();
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.write_through();
        let mut writer = self.writer.take().expect("writer present until into_inner");
        let _ = writer.flush();
        writer
    }

    fn write_through(&mut self) {
        if let Some(writer) = self.writer.as_mut() {
            if !self.buffer.is_empty() {
                let _ = writer.write_all(self.buffer.as_bytes());
                self.buffer.clear();
            }
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        self.buffer.push_str(&event.to_json_line());
        self.buffer.push('\n');
        self.events += 1;
        if self.buffer.len() >= JSONL_FLUSH_BYTES {
            self.write_through();
        }
    }

    fn flush(&mut self) {
        self.write_through();
        if let Some(writer) = self.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        self.write_through();
        if let Some(writer) = self.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

/// Fans events out to several sinks (e.g. a ring for `--trace` plus a
/// JSONL stream for `--trace-out`).
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl TeeSink {
    /// An empty tee.
    pub fn new() -> TeeSink {
        TeeSink::default()
    }

    /// Adds a sink; disabled sinks are kept but skipped on emit.
    pub fn push(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sink is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for TeeSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&mut self, event: &TraceEvent) {
        for sink in &mut self.sinks {
            if sink.enabled() {
                sink.emit(event);
            }
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }

    fn retained(&self) -> Vec<CommitRecord> {
        self.sinks
            .iter()
            .map(|s| s.retained())
            .find(|r| !r.is_empty())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(seq: u64) -> TraceEvent {
        TraceEvent::Commit(CommitRecord {
            seq,
            pc: 0x1000 + seq * 4,
            raw: 0,
            fetched_at: seq,
            dispatched_at: seq + 1,
            issued_at: seq + 2,
            completed_at: seq + 3,
            committed_at: seq + 4,
            packed: false,
            replayed: false,
        })
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.emit(&commit(0));
        assert!(sink.retained().is_empty());
    }

    #[test]
    fn ring_sink_keep_first_matches_trace_limit_semantics() {
        let mut sink = RingSink::keep_first(2);
        for i in 0..5 {
            sink.emit(&commit(i));
        }
        let seqs: Vec<u64> = sink.retained().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn ring_sink_keep_last_slides() {
        let mut sink = RingSink::keep_last(2);
        for i in 0..5 {
            sink.emit(&commit(i));
        }
        let seqs: Vec<u64> = sink.retained().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn jsonl_sink_streams_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&TraceEvent::Fetch {
            cycle: 1,
            pc: 0x1000,
            raw: 7,
            spec: false,
        });
        sink.emit(&commit(3));
        assert_eq!(sink.events(), 2);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::parse(line).expect("every trace line parses");
        }
        let c = crate::json::parse(lines[1]).unwrap();
        assert_eq!(c.get("ev").unwrap().as_str(), Some("commit"));
        assert_eq!(c.get("seq").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        use std::io::Read as _;
        let dir = std::env::temp_dir().join("nwo-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop-flush.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&commit(0));
        } // dropped without an explicit flush
        let mut text = String::new();
        File::open(&path)
            .unwrap()
            .read_to_string(&mut text)
            .unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_fans_out_and_surfaces_retained_records() {
        let mut tee = TeeSink::new();
        tee.push(Box::new(NullSink));
        tee.push(Box::new(RingSink::keep_first(8)));
        assert!(tee.enabled());
        tee.emit(&commit(1));
        assert_eq!(tee.retained().len(), 1);
    }

    #[test]
    fn every_event_kind_serializes_parseably() {
        let events = [
            TraceEvent::Fetch {
                cycle: 1,
                pc: 2,
                raw: 3,
                spec: true,
            },
            TraceEvent::Dispatch { cycle: 1, pc: 2 },
            TraceEvent::Issue {
                cycle: 1,
                pc: 2,
                packed: true,
                replay: false,
            },
            TraceEvent::Pack {
                cycle: 1,
                leader_pc: 2,
                members: 2,
                replay: true,
            },
            TraceEvent::ReplaySquash {
                cycle: 1,
                pc: 2,
                penalty: 3,
            },
            TraceEvent::Writeback { cycle: 1, pc: 2 },
            TraceEvent::BranchMispredict {
                cycle: 1,
                pc: 2,
                target: 4,
            },
            commit(9),
        ];
        for event in &events {
            let line = event.to_json_line();
            let v = crate::json::parse(&line).expect("line parses");
            assert!(v.get("ev").unwrap().as_str().is_some());
            assert_eq!(v.get("cycle").unwrap().as_u64(), Some(event.cycle()));
        }
    }
}
