//! The fourteen benchmark kernels: eight SPECint95-like, six
//! MediaBench-like. Each module provides `program(scale)` (the assembled
//! binary) and `reference(scale)` (the expected `outq` stream from a
//! pure-Rust implementation of the same algorithm).

pub mod compress;
pub mod g721;
pub mod gcc;
pub mod go;
pub mod gsm;
pub mod ijpeg;
pub mod m88ksim;
pub mod mpeg2;
pub mod perl;
pub mod vortex;
pub mod xlisp;
