//! `xlisp`-like kernel: cons cells, list surgery and a GC mark phase.
//!
//! Mirrors SPECint95 `xlisp` (a Lisp interpreter): allocation of cons
//! cells from an arena, destructive list reversal and append, then a
//! mark pass chasing `cdr` pointers — almost pure 33-bit pointer
//! traffic, the other end of the spectrum from the media kernels.

use nwo_isa::{assemble, Program};
use std::fmt::Write;

/// A cons cell is two quadwords: car (a small integer) and cdr (a
/// pointer or 0 for nil).
const CELL_BYTES: usize = 16;

fn list_len(scale: u32) -> usize {
    256 << scale
}

/// Builds the benchmark program at the given scale.
pub fn program(scale: u32) -> Program {
    let n = list_len(scale);
    let mut src = String::from(".data\n.align 8\n");
    let _ = writeln!(src, "arena: .space {}", 2 * n * CELL_BYTES);
    let _ = writeln!(src, "marks: .space {}", 2 * n);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, arena
    la   a1, marks
    li   a2, {n}
    mov  a0, s2        ; bump pointer
    ; ---- build list1: cons (i*3)&255 onto the front ----
    clr  s0            ; list1 = nil
    clr  t0
build1:
    cmplt t0, a2, t1
    beq  t1, build2_init
    mulq t0, 3, t2
    and  t2, 255, t2
    stq  t2, 0(s2)     ; car
    stq  s0, 8(s2)     ; cdr = old head
    mov  s2, s0
    addq s2, 16, s2
    addq t0, 1, t0
    br   build1
build2_init:
    ; ---- build list2: cons (i*5)&255 ----
    clr  s1
    clr  t0
build2:
    cmplt t0, a2, t1
    beq  t1, reverse_init
    mulq t0, 5, t2
    and  t2, 255, t2
    stq  t2, 0(s2)
    stq  s1, 8(s2)
    mov  s2, s1
    addq s2, 16, s2
    addq t0, 1, t0
    br   build2
reverse_init:
    ; ---- nreverse list1 (pointer reversal) ----
    clr  t0            ; prev
    mov  s0, t1        ; cur
rev:
    beq  t1, rev_done
    ldq  t2, 8(t1)     ; next
    stq  t0, 8(t1)     ; cur.cdr = prev
    mov  t1, t0
    mov  t2, t1
    br   rev
rev_done:
    mov  t0, s0        ; list1 = reversed head
    ; ---- append: tail(list1).cdr = list2 ----
    mov  s0, t0
findtail:
    ldq  t1, 8(t0)
    beq  t1, splice
    mov  t1, t0
    br   findtail
splice:
    stq  s1, 8(t0)
    ; ---- mark phase: walk list1, set mark bytes, fold cars ----
    clr  s3            ; marked count
    clr  s4            ; checksum
    mov  s0, t0
mark:
    beq  t0, report
    subq t0, a0, t1    ; cell index = (cell - arena) / 16
    srl  t1, 4, t1
    addq a1, t1, t1
    li   t2, 1
    stb  t2, 0(t1)
    addq s3, 1, s3
    ldq  t2, 0(t0)     ; car
    sll  s4, 5, t9    ; strength-reduced *31
    subq t9, s4, s4
    addq s4, t2, s4
    ldq  t0, 8(t0)     ; cdr
    br   mark
report:
    outq s3
    outq s4
    halt
"#,
        n = n,
    );
    assemble(&src).expect("xlisp kernel must assemble")
}

/// Reference implementation: the expected `outq` stream.
pub fn reference(scale: u32) -> Vec<u64> {
    let n = list_len(scale);
    // list1 reversed-then-reversed = original order; append list2 which
    // was built by consing (so it is in reverse order of i).
    let mut walked: Vec<u64> = Vec::new();
    // list1 after nreverse: values in build order i = 0..n.
    for i in 0..n {
        walked.push((i as u64 * 3) & 255);
    }
    // list2 head is the last-consed value: i = n-1 down to 0.
    for i in (0..n).rev() {
        walked.push((i as u64 * 5) & 255);
    }
    let marked = walked.len() as u64;
    let mut checksum = 0u64;
    for v in walked {
        checksum = checksum.wrapping_mul(31).wrapping_add(v);
    }
    vec![marked, checksum]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn matches_reference() {
        let prog = program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(10_000_000).expect("halts");
        assert_eq!(emu.outq(), reference(0).as_slice());
    }

    #[test]
    fn marks_both_lists() {
        assert_eq!(reference(0)[0], 2 * list_len(0) as u64);
    }
}
