//! `vortex`-like kernel: database record lookup and copying.
//!
//! Mirrors SPECint95 `vortex` (an object-oriented database): binary
//! search over a sorted key index, record retrieval and field copies —
//! wide pointer/index arithmetic with narrow comparison results.

use crate::data::emit_quads;
use crate::rng::Rng;
use nwo_isa::{assemble, Program};
use std::fmt::Write;

/// Record layout: [key, f1, f2, f3] — 32 bytes.
const RECORD_BYTES: i64 = 32;

fn record_count(scale: u32) -> usize {
    128 << scale
}

fn query_count(scale: u32) -> usize {
    512 << scale
}

fn make_records(scale: u32) -> Vec<i64> {
    let mut out = Vec::new();
    for i in 0..record_count(scale) as i64 {
        let key = i * 7 + 3; // sorted, gapped keys
        out.extend_from_slice(&[key, (key * key) & 0xffff, key ^ 0x5a5a, key * 3]);
    }
    out
}

fn make_queries(scale: u32) -> Vec<i64> {
    let mut rng = Rng::new(0x0bde);
    let max_key = (record_count(scale) as i64 - 1) * 7 + 3;
    (0..query_count(scale))
        .map(|_| rng.range(0, max_key + 8))
        .collect()
}

/// Builds the benchmark program at the given scale.
pub fn program(scale: u32) -> Program {
    let records = make_records(scale);
    let queries = make_queries(scale);
    let mut src = String::from(".data\n.align 8\n");
    emit_quads(&mut src, "records", &records);
    emit_quads(&mut src, "queries", &queries);
    let _ = writeln!(src, "outbuf: .space {RECORD_BYTES}");
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, records
    la   a1, queries
    la   a2, outbuf
    li   a3, {nrec}
    li   a4, {nquery}
    clr  s0            ; hits
    clr  s1            ; checksum
    clr  t0            ; query index
qloop:
    cmplt t0, a4, t1
    beq  t1, done
    sll  t0, 3, t1
    addq a1, t1, t1
    ldq  v0, 0(t1)     ; q = queries[j]
    ; binary search: lo in t2, hi in t3 (hi is exclusive)
    clr  t2
    mov  a3, t3
search:
    cmplt t2, t3, t4
    beq  t4, miss
    addq t2, t3, t5
    srl  t5, 1, t5     ; mid
    sll  t5, 5, t6     ; mid * 32
    addq a0, t6, t6    ; &records[mid]
    ldq  t7, 0(t6)     ; key
    subq t7, v0, t8
    beq  t8, hit
    ; branchless interval update (cmov, as cc -O5 emits):
    ;   key < q  ->  lo = mid + 1
    ;   key > q  ->  hi = mid
    cmplt t7, v0, t8
    addq t5, 1, t9
    cmovne t8, t9, t2  ; lo = mid + 1 when key < q
    cmoveq t8, t5, t3  ; hi = mid otherwise
    br   search
hit:
    addq s0, 1, s0
    ; copy the record to outbuf and fold fields
    ldq  t8, 0(t6)
    stq  t8, 0(a2)
    ldq  t9, 8(t6)
    stq  t9, 8(a2)
    addq s1, t8, s1
    addq s1, t9, s1
    ldq  t8, 16(t6)
    stq  t8, 16(a2)
    ldq  t9, 24(t6)
    stq  t9, 24(a2)
    addq s1, t9, s1
miss:
    addq t0, 1, t0
    br   qloop
done:
    outq s0
    outq s1
    halt
"#,
        nrec = record_count(scale),
        nquery = query_count(scale),
    );
    assemble(&src).expect("vortex kernel must assemble")
}

/// Reference implementation: the expected `outq` stream.
pub fn reference(scale: u32) -> Vec<u64> {
    let records = make_records(scale);
    let queries = make_queries(scale);
    let n = record_count(scale);
    let mut hits = 0u64;
    let mut checksum = 0u64;
    for &q in &queries {
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let key = records[mid * 4];
            match key.cmp(&q) {
                std::cmp::Ordering::Equal => {
                    hits += 1;
                    checksum = checksum
                        .wrapping_add(records[mid * 4] as u64)
                        .wrapping_add(records[mid * 4 + 1] as u64)
                        .wrapping_add(records[mid * 4 + 3] as u64);
                    break;
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
    }
    vec![hits, checksum]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn matches_reference() {
        let prog = program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(10_000_000).expect("halts");
        assert_eq!(emu.outq(), reference(0).as_slice());
    }

    #[test]
    fn some_queries_hit_and_some_miss() {
        let r = reference(0);
        let hits = r[0];
        assert!(hits > 0, "some queries must hit");
        assert!(hits < query_count(0) as u64, "gapped keys must miss too");
    }
}
