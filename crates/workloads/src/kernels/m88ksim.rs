//! `m88ksim`-like kernel: an instruction-set interpreter.
//!
//! Mirrors SPECint95 `m88ksim` (a Motorola 88100 simulator): a classic
//! fetch/decode/dispatch interpreter loop over a guest program, with
//! register-indirect dispatch through a jump table — the BTB-stressing,
//! narrow-ALU-value profile of real simulators.

use nwo_isa::{assemble, Program};
use std::fmt::Write;

/// Guest opcodes.
const OP_ADD: u64 = 0; // vr[rd] = vr[rs1] + vr[rs2]
const OP_ADDI: u64 = 1; // vr[rd] = vr[rs1] + imm
const OP_MUL: u64 = 2; // vr[rd] = vr[rs1] * vr[rs2]
const OP_XOR: u64 = 3; // vr[rd] = vr[rs1] ^ vr[rs2]
const OP_BNZ: u64 = 4; // if vr[rd] != 0: pc += imm - 128
const OP_SHR: u64 = 5; // vr[rd] = vr[rs1] >> (imm & 63)
const OP_HALT: u64 = 6;

fn enc(op: u64, rd: u64, rs1: u64, imm: u64) -> i64 {
    (op | (rd << 8) | (rs1 << 16) | (imm << 24)) as i64
}

/// The guest program: an arithmetic loop, dhrystone-ish.
///
/// vr0 = counter, vr1 = accumulator, vr2 = 3, vr3 = scratch.
fn guest_program(scale: u32) -> Vec<i64> {
    let iterations = 512u64 << scale;
    vec![
        enc(OP_ADDI, 0, 7, (iterations >> 8) & 0xff), // vr0 = hi byte
        enc(OP_SHR, 3, 0, 64),                        // (shift by 0: copy)
        enc(OP_MUL, 0, 0, 0),                         // placeholder, fixed below
        enc(OP_ADDI, 0, 0, iterations & 0xff),        // vr0 += lo byte
        enc(OP_ADDI, 2, 7, 3),                        // vr2 = 3
        // loop:
        enc(OP_MUL, 3, 0, 2),       // vr3 = vr0 * vr2
        enc(OP_ADD, 1, 1, 3),       // vr1 += vr3
        enc(OP_XOR, 1, 1, 0),       // vr1 ^= vr0
        enc(OP_SHR, 3, 1, 3),       // vr3 = vr1 >> 3
        enc(OP_ADD, 1, 1, 3),       // vr1 += vr3
        enc(OP_ADDI, 4, 0, 1),      // vr4 = vr0 + 1 (keeps a narrow value hot)
        enc(OP_ADDI, 0, 0, 255),    // vr0 -= 1 via +255? No: see fixup below.
        enc(OP_BNZ, 0, 0, 128 - 7), // back to loop head while vr0 != 0
        enc(OP_HALT, 0, 0, 0),
    ]
}

/// Applies the encoding fix-ups that need full-width constants: slot 2
/// multiplies vr0 by 256 (vr0 = hi<<8) and slot 11 decrements.
#[allow(clippy::vec_init_then_push)] // sequential program construction reads better
fn fixed_guest(scale: u32) -> Vec<i64> {
    let mut prog = guest_program(scale);
    // Slot 1: vr3 = vr0 (shift by 0); slot 2: vr0 = vr3 * 256 expressed
    // as eight doublings is clunky — instead reuse MUL with vr5 = 256
    // built from two ADDIs.
    prog[1] = enc(OP_ADDI, 5, 7, 128); // vr5 = 128
    prog[2] = enc(OP_ADD, 5, 5, 5); // vr5 = 256
    let mut out = Vec::new();
    out.push(prog[0]); // vr0 = hi
    out.push(prog[1]);
    out.push(prog[2]);
    out.push(enc(OP_MUL, 0, 0, 5)); // vr0 = hi << 8
    out.push(prog[3]); // vr0 += lo
    out.push(prog[4]); // vr2 = 3
                       // loop body at guest pc 6..=12.
    out.push(prog[5]);
    out.push(prog[6]);
    out.push(prog[7]);
    out.push(prog[8]);
    out.push(prog[9]);
    out.push(prog[10]);
    out.push(enc(OP_ADDI, 6, 7, 1)); // vr6 = 1
    out.push(enc(OP_XOR, 3, 3, 3)); // vr3 = 0 (narrow scratch)
    out.push(enc(OP_ADD, 3, 3, 6)); // vr3 = 1
    out.push(enc(OP_MUL, 3, 3, 6)); // vr3 = 1 (keeps mul unit busy)
                                    // vr0 -= 1: vr0 = vr0 + (-1) has no negative imm; vr0 ^= ... use
                                    // dedicated SUB pattern: vr3 = 1; vr0 = vr0 + (vr3 * -1)? Simplest:
                                    // give the guest a SUB via ADD of two's complement built once:
                                    // vr7 is hardwired zero in the interpreter, so vrm1 lives in vr6.
    out.push(enc(OP_SUB, 0, 0, 6)); // vr0 -= vr6 (=1)
    out.push(enc(OP_BNZ, 0, 0, 128 - 11)); // while vr0 != 0 jump -11
    out.push(enc(OP_HALT, 0, 0, 0));
    out
}

/// Guest SUB opcode (added alongside the original set).
const OP_SUB: u64 = 7;

/// Builds the benchmark program at the given scale.
pub fn program(scale: u32) -> Program {
    let guest = fixed_guest(scale);
    let mut src = String::from(".data\n.align 8\n");
    crate::data::emit_quads(&mut src, "guest", &guest);
    let _ = writeln!(src, "vregs: .space 64"); // 8 guest registers
    let _ = writeln!(
        src,
        "dispatch: .quad op_add, op_addi, op_mul, op_xor, op_bnz, op_shr, op_halt, op_sub"
    );
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, guest
    la   a1, vregs
    la   a2, dispatch
    clr  s0            ; executed guest instructions
    clr  t0            ; guest pc
vmloop:
    sll  t0, 3, t1
    addq a0, t1, t1
    ldq  t2, 0(t1)     ; guest instruction word
    and  t2, 255, t3   ; op
    srl  t2, 8, t4
    and  t4, 7, t4     ; rd
    srl  t2, 16, t5
    and  t5, 7, t5     ; rs1
    srl  t2, 24, t6
    and  t6, 255, t6   ; imm / rs2
    sll  t3, 3, t7
    addq a2, t7, t7
    ldq  pv, 0(t7)
    addq s0, 1, s0
    jmp  (pv)
op_add:
    sll  t5, 3, t8
    addq a1, t8, t8
    ldq  t9, 0(t8)     ; vr[rs1]
    and  t6, 7, t7
    sll  t7, 3, t7
    addq a1, t7, t7
    ldq  t7, 0(t7)     ; vr[rs2]
    addq t9, t7, t9
    br   writeback
op_sub:
    sll  t5, 3, t8
    addq a1, t8, t8
    ldq  t9, 0(t8)
    and  t6, 7, t7
    sll  t7, 3, t7
    addq a1, t7, t7
    ldq  t7, 0(t7)
    subq t9, t7, t9
    br   writeback
op_addi:
    sll  t5, 3, t8
    addq a1, t8, t8
    ldq  t9, 0(t8)
    addq t9, t6, t9
    br   writeback
op_mul:
    sll  t5, 3, t8
    addq a1, t8, t8
    ldq  t9, 0(t8)
    and  t6, 7, t7
    sll  t7, 3, t7
    addq a1, t7, t7
    ldq  t7, 0(t7)
    mulq t9, t7, t9
    br   writeback
op_xor:
    sll  t5, 3, t8
    addq a1, t8, t8
    ldq  t9, 0(t8)
    and  t6, 7, t7
    sll  t7, 3, t7
    addq a1, t7, t7
    ldq  t7, 0(t7)
    xor  t9, t7, t9
    br   writeback
op_shr:
    sll  t5, 3, t8
    addq a1, t8, t8
    ldq  t9, 0(t8)
    and  t6, 63, t7
    srl  t9, t7, t9
    br   writeback
op_bnz:
    sll  t4, 3, t8
    addq a1, t8, t8
    ldq  t9, 0(t8)
    beq  t9, bnz_fall
    subq t6, 128, t6   ; signed displacement
    addq t0, t6, t0
    br   vmloop
bnz_fall:
    addq t0, 1, t0
    br   vmloop
writeback:
    ; vr7 is hardwired zero, like r31.
    cmpeq t4, 7, t7
    bne  t7, wb_skip
    sll  t4, 3, t8
    addq a1, t8, t8
    stq  t9, 0(t8)
wb_skip:
    addq t0, 1, t0
    br   vmloop
op_halt:
    ; checksum the guest registers
    clr  s1
    clr  t0
fold:
    cmplt t0, 8, t1
    beq  t1, out
    sll  t0, 3, t1
    addq a1, t1, t1
    ldq  t2, 0(t1)
    sll  s1, 5, t9    ; strength-reduced *31
    subq t9, s1, s1
    addq s1, t2, s1
    addq t0, 1, t0
    br   fold
out:
    outq s0
    outq s1
    halt
"#
    );
    assemble(&src).expect("m88ksim kernel must assemble")
}

/// Reference implementation: the expected `outq` stream.
pub fn reference(scale: u32) -> Vec<u64> {
    let guest = fixed_guest(scale);
    let mut vr = [0u64; 8];
    let mut pc = 0i64;
    let mut executed = 0u64;
    loop {
        let word = guest[pc as usize] as u64;
        let op = word & 255;
        let rd = ((word >> 8) & 7) as usize;
        let rs1 = ((word >> 16) & 7) as usize;
        let imm = (word >> 24) & 255;
        executed += 1;
        let rs2 = (imm & 7) as usize;
        let result = match op {
            OP_ADD => Some(vr[rs1].wrapping_add(vr[rs2])),
            OP_SUB => Some(vr[rs1].wrapping_sub(vr[rs2])),
            OP_ADDI => Some(vr[rs1].wrapping_add(imm)),
            OP_MUL => Some(vr[rs1].wrapping_mul(vr[rs2])),
            OP_XOR => Some(vr[rs1] ^ vr[rs2]),
            OP_SHR => Some(vr[rs1] >> (imm & 63)),
            _ => None,
        };
        if let Some(v) = result {
            if rd != 7 {
                vr[rd] = v;
            }
            pc += 1;
            continue;
        }
        match op {
            OP_BNZ => {
                if vr[rd] != 0 {
                    pc += imm as i64 - 128;
                    continue;
                }
            }
            OP_HALT => break,
            _ => unreachable!("unknown guest opcode"),
        }
        pc += 1;
    }
    let mut checksum = 0u64;
    for &v in &vr {
        checksum = checksum.wrapping_mul(31).wrapping_add(v);
    }
    vec![executed, checksum]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn matches_reference() {
        let prog = program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(50_000_000).expect("halts");
        assert_eq!(emu.outq(), reference(0).as_slice());
    }

    #[test]
    fn guest_loop_actually_iterates() {
        let r = reference(0);
        assert!(r[0] > 512 * 10, "guest executes the loop body many times");
    }
}
