//! `go`-like kernel: 19×19 board scanning.
//!
//! Mirrors SPECint95 `go`: per-point neighbour classification (liberty
//! counting and influence), heavy on address arithmetic and branches —
//! the address-calculation-dominated profile the paper's 33-bit gating
//! signal targets.

use crate::data::{emit_bytes, go_board};
use nwo_isa::{assemble, Program};
use std::fmt::Write;

const SIZE: i64 = 19;

fn passes(scale: u32) -> u64 {
    2 << scale
}

fn neighbor_block(name: &str, skip_check: &str, offset: i64) -> String {
    let addr = if offset < 0 {
        format!("subq t2, {}, t8", -offset)
    } else {
        format!("addq t2, {offset}, t8")
    };
    // Branchless classification (compare-and-accumulate), the code an
    // optimising compiler emits for a three-way histogram.
    format!(
        r#"{skip_check}
    {addr}
    addq a0, t8, t8
    ldbu t7, 0(t8)
    cmpeq t7, 0, t9
    addq t6, t9, t6
    cmpeq t7, 1, t9
    addq t4, t9, t4
    cmpeq t7, 2, t9
    addq t5, t9, t5
nb_{name}_done:
"#
    )
}

/// Builds the benchmark program at the given scale.
pub fn program(scale: u32) -> Program {
    let board = go_board(0x60b0);
    let mut src = String::from(".data\n");
    emit_bytes(&mut src, "board", &board);
    let up = neighbor_block("up", "beq  t0, nb_up_done", -SIZE);
    let down = neighbor_block("down", "cmpeq t0, 18, t9\n    bne  t9, nb_down_done", SIZE);
    let left = neighbor_block("left", "beq  t1, nb_left_done", -1);
    let right = neighbor_block("right", "cmpeq t1, 18, t9\n    bne  t9, nb_right_done", 1);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, board
    li   a1, {passes}
    clr  s0            ; influence
    clr  s1            ; liberties
    clr  s2            ; pass
pass_loop:
    cmplt s2, a1, t9
    beq  t9, done
    clr  t0            ; row
row_loop:
    cmplt t0, 19, t9
    beq  t9, pass_next
    clr  t1            ; col
col_loop:
    cmplt t1, 19, t9
    beq  t9, row_next
    mulq t0, 19, t2
    addq t2, t1, t2    ; idx
    addq a0, t2, t3
    ldbu t3, 0(t3)     ; cell
    clr  t4            ; black neighbours
    clr  t5            ; white neighbours
    clr  t6            ; empty neighbours
{up}{down}{left}{right}
    beq  t3, point_empty
    addq s1, t6, s1    ; stone: liberties += empties
    br   point_done
point_empty:
    subq t4, t5, t9
    addq s0, t9, s0    ; empty: influence += black - white
point_done:
    addq t1, 1, t1
    br   col_loop
row_next:
    addq t0, 1, t0
    br   row_loop
pass_next:
    ; mutate one cell: board[(pass*53) % 361] = (v + 1) % 3
    mulq s2, 53, t0
    li   t1, 361
    remq t0, t1, t0
    addq a0, t0, t0
    ldbu t1, 0(t0)
    addq t1, 1, t1
    cmpeq t1, 3, t2
    beq  t2, store_cell
    clr  t1
store_cell:
    stb  t1, 0(t0)
    addq s2, 1, s2
    br   pass_loop
done:
    outq s0
    outq s1
    halt
"#,
        passes = passes(scale),
    );
    assemble(&src).expect("go kernel must assemble")
}

/// Reference implementation: the expected `outq` stream.
pub fn reference(scale: u32) -> Vec<u64> {
    let mut board = go_board(0x60b0);
    let mut influence = 0i64;
    let mut liberties = 0u64;
    for pass in 0..passes(scale) {
        for r in 0..19i64 {
            for c in 0..19i64 {
                let idx = (r * 19 + c) as usize;
                let cell = board[idx];
                let mut black = 0i64;
                let mut white = 0i64;
                let mut empty = 0u64;
                let mut look = |i: usize| match board[i] {
                    0 => empty += 1,
                    1 => black += 1,
                    _ => white += 1,
                };
                if r > 0 {
                    look(idx - 19);
                }
                if r < 18 {
                    look(idx + 19);
                }
                if c > 0 {
                    look(idx - 1);
                }
                if c < 18 {
                    look(idx + 1);
                }
                if cell == 0 {
                    influence = influence.wrapping_add(black - white);
                } else {
                    liberties = liberties.wrapping_add(empty);
                }
            }
        }
        let m = ((pass * 53) % 361) as usize;
        board[m] = (board[m] + 1) % 3;
    }
    vec![influence as u64, liberties]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn matches_reference() {
        let prog = program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(10_000_000).expect("halts");
        assert_eq!(emu.outq(), reference(0).as_slice());
    }

    #[test]
    fn liberties_are_plausible() {
        let r = reference(0);
        // A random 19x19 board has plenty of stones with liberties.
        assert!(r[1] > 100);
    }
}
