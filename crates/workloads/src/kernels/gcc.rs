//! `gcc`-like kernel: tokenisation and symbol-table management.
//!
//! Mirrors the compiler profile of SPECint95 `gcc`: identifier scanning,
//! hashing, and chained hash-table insertion/lookup over a pointer
//! arena — a mix of byte-narrow character work and 33-bit pointer
//! chasing.

use crate::data::{emit_bytes, text};
use nwo_isa::{assemble, Program};
use std::collections::HashMap;
use std::fmt::Write;

const BUCKETS: usize = 256;
/// Entry layout in the arena: [full hash, count, next] — 24 bytes.
const ENTRY_BYTES: usize = 24;

fn input_len(scale: u32) -> usize {
    1024 << scale
}

fn max_symbols(scale: u32) -> usize {
    512 << scale
}

/// Builds the benchmark program at the given scale.
pub fn program(scale: u32) -> Program {
    let input = text(0x6cc0, input_len(scale));
    let mut src = String::from(".data\n");
    emit_bytes(&mut src, "textbuf", &input);
    let _ = writeln!(src, ".align 8");
    let _ = writeln!(src, "buckets: .space {}", BUCKETS * 8);
    let _ = writeln!(src, "arena: .space {}", max_symbols(scale) * ENTRY_BYTES);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, textbuf
    li   a1, {len}
    la   a2, buckets
    la   a3, arena
    clr  s0            ; tokens
    clr  s1            ; distinct symbols
    mov  a3, s2        ; arena bump pointer
    clr  t0            ; i
    clr  t1            ; current hash (0 = not inside identifier)
scan:
    cmplt t0, a1, t2
    beq  t2, endscan
    addq a0, t0, t2
    ldbu t3, 0(t2)     ; c
    cmpult t3, 'a', t4
    bne  t4, break_ident
    cmpule t3, 'z', t4
    beq  t4, break_ident
    ; h = h*131 + c  (h starts at 1 so empty/non-empty is distinguishable)
    bne  t1, grow
    li   t1, 1
grow:
    mulq t1, 131, t1
    addq t1, t3, t1
    addq t0, 1, t0
    br   scan
break_ident:
    beq  t1, advance   ; no identifier pending
    ; finish identifier with hash t1
    addq s0, 1, s0
    and  t1, 255, t4   ; bucket index
    sll  t4, 3, t4
    addq a2, t4, t4    ; &buckets[b]
    ldq  t5, 0(t4)     ; chain head
walk:
    beq  t5, insert
    ldq  t6, 0(t5)     ; entry hash
    subq t6, t1, t7
    beq  t7, found
    ldq  t5, 16(t5)    ; next
    br   walk
found:
    ldq  t6, 8(t5)
    addq t6, 1, t6
    stq  t6, 8(t5)     ; count++
    br   ident_done
insert:
    stq  t1, 0(s2)     ; hash
    li   t6, 1
    stq  t6, 8(s2)     ; count = 1
    ldq  t7, 0(t4)
    stq  t7, 16(s2)    ; next = old head
    stq  s2, 0(t4)     ; head = new entry
    addq s2, 24, s2
    addq s1, 1, s1
ident_done:
    clr  t1
advance:
    addq t0, 1, t0
    br   scan
endscan:
    beq  t1, summarize ; flush a trailing identifier
    addq s0, 1, s0
    and  t1, 255, t4
    sll  t4, 3, t4
    addq a2, t4, t4
    ldq  t5, 0(t4)
walk2:
    beq  t5, insert2
    ldq  t6, 0(t5)
    subq t6, t1, t7
    beq  t7, found2
    ldq  t5, 16(t5)
    br   walk2
found2:
    ldq  t6, 8(t5)
    addq t6, 1, t6
    stq  t6, 8(t5)
    br   summarize
insert2:
    stq  t1, 0(s2)
    li   t6, 1
    stq  t6, 8(s2)
    ldq  t7, 0(t4)
    stq  t7, 16(s2)
    stq  s2, 0(t4)
    addq s2, 24, s2
    addq s1, 1, s1
summarize:
    ; checksum = fold over arena entries in allocation order
    clr  s3
    mov  a3, t0
chk:
    cmpult t0, s2, t2
    beq  t2, out
    ldq  t3, 8(t0)     ; count
    sll  s3, 5, t9    ; strength-reduced *31
    subq t9, s3, s3
    addq s3, t3, s3
    addq t0, 24, t0
    br   chk
out:
    outq s0
    outq s1
    outq s3
    halt
"#,
        len = input.len(),
    );
    assemble(&src).expect("gcc kernel must assemble")
}

/// Reference implementation: the expected `outq` stream.
pub fn reference(scale: u32) -> Vec<u64> {
    let input = text(0x6cc0, input_len(scale));
    let mut tokens = 0u64;
    let mut order: Vec<u64> = Vec::new(); // counts in allocation order
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut h = 0u64;
    let mut finish = |h: &mut u64, tokens: &mut u64| {
        if *h != 0 {
            *tokens += 1;
            match index.get(h) {
                Some(&i) => order[i] += 1,
                None => {
                    index.insert(*h, order.len());
                    order.push(1);
                }
            }
            *h = 0;
        }
    };
    for &c in &input {
        if c.is_ascii_lowercase() {
            if h == 0 {
                h = 1;
            }
            h = h.wrapping_mul(131).wrapping_add(c as u64);
        } else {
            finish(&mut h, &mut tokens);
        }
    }
    finish(&mut h, &mut tokens);
    let distinct = order.len() as u64;
    let mut checksum = 0u64;
    for count in order {
        checksum = checksum.wrapping_mul(31).wrapping_add(count);
    }
    vec![tokens, distinct, checksum]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn matches_reference() {
        let prog = program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(10_000_000).expect("halts");
        assert_eq!(emu.outq(), reference(0).as_slice());
    }

    #[test]
    fn symbol_table_sees_repeats() {
        let r = reference(0);
        assert!(r[0] > r[1], "repeated identifiers must collapse");
        assert!(r[1] > 10, "input must contain many distinct identifiers");
    }
}
