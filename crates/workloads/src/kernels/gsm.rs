//! `gsm`-like kernels: long-term-prediction speech coding.
//!
//! Mirrors MediaBench `gsm-encode`/`gsm-decode` (GSM 06.10 full rate):
//! the encoder's dominant loop is the long-term-prediction lag search —
//! a dense 16-bit multiply-accumulate — and the decoder reconstructs
//! from lag + residual. This is the benchmark whose narrow multiplies
//! the paper calls out ("6% of the narrow-width operations in gsm").

use crate::data::{audio, emit_bytes, emit_words};
use nwo_isa::{assemble, Program};
use std::fmt::Write;

const SUBFRAME: usize = 40;
const MIN_LAG: i64 = 40;
const MAX_LAG: i64 = 120;
/// History samples preceding the first subframe.
const HISTORY: usize = MAX_LAG as usize;

fn sample_count(scale: u32) -> usize {
    HISTORY + SUBFRAME * (12 << scale)
}

fn samples(scale: u32) -> Vec<i16> {
    audio(0x65e0, sample_count(scale))
}

/// Encoder model shared by the assembly kernel and the Rust reference:
/// per subframe, pick the lag in `[40, 120]` maximising the
/// cross-correlation, then produce the half-gain residual.
fn encode_model(x: &[i16]) -> (Vec<u64>, Vec<i16>, u64, u64) {
    let mut lags = Vec::new();
    let mut residual = Vec::new();
    let mut lag_sum = 0u64;
    let mut energy = 0u64;
    let mut s = HISTORY;
    while s + SUBFRAME <= x.len() {
        let mut best_corr = i64::MIN;
        let mut best_lag = MIN_LAG;
        for lag in MIN_LAG..=MAX_LAG {
            let mut corr = 0i64;
            for i in 0..SUBFRAME {
                corr += x[s + i] as i64 * x[s + i - lag as usize] as i64;
            }
            if corr > best_corr {
                best_corr = corr;
                best_lag = lag;
            }
        }
        lags.push(best_lag as u64);
        lag_sum = lag_sum.wrapping_add(best_lag as u64);
        for i in 0..SUBFRAME {
            let pred = (x[s + i - best_lag as usize] as i64) >> 1;
            let r = x[s + i] as i64 - pred;
            residual.push(r as i16);
            energy = energy.wrapping_add(((r * r) >> 8) as u64);
        }
        s += SUBFRAME;
    }
    (lags, residual, lag_sum, energy)
}

/// Builds the encoder benchmark at the given scale.
pub fn encode_program(scale: u32) -> Program {
    let x = samples(scale);
    let mut src = String::from(".data\n.align 8\n");
    emit_words(&mut src, "pcm", &x);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, pcm
    li   a1, {nsamples}
    clr  s0            ; lag sum
    clr  s1            ; residual energy
    li   s2, {history} ; s = subframe start
sf_loop:
    addq s2, 40, t9
    cmpule t9, a1, t9
    beq  t9, done
    sll  s2, 1, a2
    addq a0, a2, a2    ; subframe base pointer (hoisted)
    ; ---- lag search (correlation loop unrolled x4, two accumulators,
    ;      as cc -O5 emits) ----
    li   s3, 40        ; lag
    li   s4, 40        ; best lag
    li   s5, 1
    sll  s5, 62, s5
    subq zero, s5, s5  ; best corr = -(1<<62)
lag_loop:
    cmpule s3, 120, t9
    beq  t9, lag_done
    clr  t0            ; corr (even)
    clr  at            ; corr (odd)
    mov  a2, t2        ; current-sample pointer
    sll  s3, 1, t9
    subq a2, t9, t3    ; lagged-sample pointer
    li   t1, 10        ; 10 groups of 4 samples
corr_loop:
    ldwu t4, 0(t2)
    sextw t4, t4
    ldwu t6, 0(t3)
    sextw t6, t6
    mulq t4, t6, t4
    addq t0, t4, t0
    ldwu t4, 2(t2)
    sextw t4, t4
    ldwu t6, 2(t3)
    sextw t6, t6
    mulq t4, t6, t4
    addq at, t4, at
    ldwu t4, 4(t2)
    sextw t4, t4
    ldwu t6, 4(t3)
    sextw t6, t6
    mulq t4, t6, t4
    addq t0, t4, t0
    ldwu t4, 6(t2)
    sextw t4, t4
    ldwu t6, 6(t3)
    sextw t6, t6
    mulq t4, t6, t4
    addq at, t4, at
    addq t2, 8, t2
    addq t3, 8, t3
    subq t1, 1, t1
    bgt  t1, corr_loop
    addq t0, at, t0    ; combine accumulators
    cmplt s5, t0, t9
    beq  t9, lag_next
    mov  t0, s5
    mov  s3, s4
lag_next:
    addq s3, 1, s3
    br   lag_loop
lag_done:
    addq s0, s4, s0
    ; ---- residual of the winning lag (unrolled x2) ----
    mov  a2, t2
    sll  s4, 1, t9
    subq a2, t9, t3
    li   t1, 20        ; 20 groups of 2 samples
res_loop:
    ldwu t4, 0(t2)
    sextw t4, t4
    ldwu t6, 0(t3)
    sextw t6, t6
    sra  t6, 1, t6     ; half-gain prediction
    subq t4, t6, t4    ; residual
    mulq t4, t4, t5
    srl  t5, 8, t5
    addq s1, t5, s1
    ldwu t4, 2(t2)
    sextw t4, t4
    ldwu t6, 2(t3)
    sextw t6, t6
    sra  t6, 1, t6     ; half-gain prediction
    subq t4, t6, t4    ; residual
    mulq t4, t4, t5
    srl  t5, 8, t5
    addq s1, t5, s1
    addq t2, 4, t2
    addq t3, 4, t3
    subq t1, 1, t1
    bgt  t1, res_loop
sf_next:
    addq s2, 40, s2
    br   sf_loop
done:
    outq s0
    outq s1
    halt
"#,
        nsamples = x.len(),
        history = HISTORY,
    );
    assemble(&src).expect("gsm encode kernel must assemble")
}

/// Expected encoder output.
pub fn encode_reference(scale: u32) -> Vec<u64> {
    let x = samples(scale);
    let (_, _, lag_sum, energy) = encode_model(&x);
    vec![lag_sum, energy]
}

/// Builds the decoder benchmark: reconstruct from history + lags +
/// residual (produced by the reference encoder, as a real bitstream
/// would be).
pub fn decode_program(scale: u32) -> Program {
    let x = samples(scale);
    let (lags, residual, _, _) = encode_model(&x);
    let lag_bytes: Vec<u8> = lags.iter().map(|&l| l as u8).collect();
    let history: Vec<i16> = x[..HISTORY].to_vec();
    let mut src = String::from(".data\n.align 8\n");
    emit_words(&mut src, "hist", &history);
    emit_words(&mut src, "res", &residual);
    emit_bytes(&mut src, "lags", &lag_bytes);
    let _ = writeln!(src, ".align 8");
    let _ = writeln!(src, "work: .space {}", (HISTORY + residual.len()) * 8);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, hist
    la   a1, res
    la   a2, lags
    la   a3, work
    li   a4, {nsub}
    clr  s0            ; checksum
    ; copy history into the quadword workspace
    clr  t0
copy:
    cmplt t0, {history}, t9
    beq  t9, decode
    sll  t0, 1, t1
    addq a0, t1, t1
    ldwu t2, 0(t1)
    sextw t2, t2
    sll  t0, 3, t1
    addq a3, t1, t1
    stq  t2, 0(t1)
    addq t0, 1, t0
    br   copy
decode:
    clr  s2            ; subframe index
    li   s3, {history} ; output position
sf_loop:
    cmplt s2, a4, t9
    beq  t9, done
    addq a2, s2, t0
    ldbu s4, 0(t0)     ; lag
    ; reconstruction unrolled x4 — safe because lag >= 40 keeps the
    ; recurrence distance beyond the unroll window
    sll  s3, 3, t2
    addq a3, t2, t2    ; output pointer
    sll  s4, 3, t3
    subq t2, t3, t3    ; lagged pointer
    subq s3, {history}, t5
    sll  t5, 1, t5
    addq a1, t5, t5    ; residual pointer
    li   t1, 10        ; 10 groups of 4 samples
rec_loop:
    ldq  t4, 0(t3)  ; reconstructed past sample
    sra  t4, 1, t4
    ldwu t6, 0(t5)
    sextw t6, t6       ; residual
    addq t6, t4, t6    ; sample
    stq  t6, 0(t2)
    sll  s0, 5, t9    ; strength-reduced *31
    subq t9, s0, s0
    addq s0, t6, s0
    ldq  t4, 8(t3)  ; reconstructed past sample
    sra  t4, 1, t4
    ldwu t6, 2(t5)
    sextw t6, t6       ; residual
    addq t6, t4, t6    ; sample
    stq  t6, 8(t2)
    sll  s0, 5, t9    ; strength-reduced *31
    subq t9, s0, s0
    addq s0, t6, s0
    ldq  t4, 16(t3)  ; reconstructed past sample
    sra  t4, 1, t4
    ldwu t6, 4(t5)
    sextw t6, t6       ; residual
    addq t6, t4, t6    ; sample
    stq  t6, 16(t2)
    sll  s0, 5, t9    ; strength-reduced *31
    subq t9, s0, s0
    addq s0, t6, s0
    ldq  t4, 24(t3)  ; reconstructed past sample
    sra  t4, 1, t4
    ldwu t6, 6(t5)
    sextw t6, t6       ; residual
    addq t6, t4, t6    ; sample
    stq  t6, 24(t2)
    sll  s0, 5, t9    ; strength-reduced *31
    subq t9, s0, s0
    addq s0, t6, s0
    addq t2, 32, t2
    addq t3, 32, t3
    addq t5, 8, t5
    subq t1, 1, t1
    bgt  t1, rec_loop
sf_next:
    addq s2, 1, s2
    addq s3, 40, s3
    br   sf_loop
done:
    outq s0
    halt
"#,
        nsub = lags.len(),
        history = HISTORY,
    );
    assemble(&src).expect("gsm decode kernel must assemble")
}

/// Expected decoder output.
pub fn decode_reference(scale: u32) -> Vec<u64> {
    let x = samples(scale);
    let (lags, residual, _, _) = encode_model(&x);
    let mut work: Vec<i64> = x[..HISTORY].iter().map(|&v| v as i64).collect();
    let mut checksum = 0u64;
    for (sf, &lag) in lags.iter().enumerate() {
        for i in 0..SUBFRAME {
            let pos = HISTORY + sf * SUBFRAME + i;
            let pred = work[pos - lag as usize] >> 1;
            let v = residual[sf * SUBFRAME + i] as i64 + pred;
            work.push(v);
            debug_assert_eq!(work.len(), pos + 1);
            checksum = checksum.wrapping_mul(31).wrapping_add(v as u64);
        }
    }
    vec![checksum]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn encode_matches_reference() {
        let prog = encode_program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(100_000_000).expect("halts");
        assert_eq!(emu.outq(), encode_reference(0).as_slice());
    }

    #[test]
    fn decode_matches_reference() {
        let prog = decode_program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(100_000_000).expect("halts");
        assert_eq!(emu.outq(), decode_reference(0).as_slice());
    }

    #[test]
    fn decoder_reconstructs_the_input_exactly() {
        // Half-gain prediction with exact integer residuals is lossless:
        // the reconstruction must equal the original samples.
        let x = samples(0);
        let (lags, residual, _, _) = encode_model(&x);
        let mut work: Vec<i64> = x[..HISTORY].iter().map(|&v| v as i64).collect();
        for (sf, &lag) in lags.iter().enumerate() {
            for i in 0..SUBFRAME {
                let pos = HISTORY + sf * SUBFRAME + i;
                let pred = work[pos - lag as usize] >> 1;
                work.push(residual[sf * SUBFRAME + i] as i64 + pred);
            }
        }
        for (i, &v) in work.iter().enumerate() {
            assert_eq!(v, x[i] as i64, "sample {i}");
        }
    }

    #[test]
    fn lags_stay_in_range() {
        let (lags, _, _, _) = encode_model(&samples(0));
        assert!(!lags.is_empty());
        assert!(lags.iter().all(|&l| (40..=120).contains(&l)));
    }
}
