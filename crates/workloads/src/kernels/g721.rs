//! `g721`-like kernels: ADPCM voice coding with a transversal predictor.
//!
//! Mirrors MediaBench `g721-encode`/`g721-decode` (CCITT G.721): the real
//! codec predicts each sample with a six-tap transversal filter over the
//! quantised-difference history plus an adaptive quantiser. We keep that
//! structure — a six-term shift/add prediction tree evaluated every
//! sample with the history in registers — which gives the kernel the
//! genuine instruction-level parallelism of the reference code, followed
//! by the serial quantiser/adaptation recurrence.

use crate::data::{audio, emit_bytes, emit_words};
use nwo_isa::{assemble, Program};
use std::fmt::Write;

/// Adaptive step-size table (the IMA/DVI quantiser ladder).
const STEPS: [i16; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index adaptation per 3-bit magnitude code.
const INDEX_ADJUST: [i8; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

/// The fixed leaky transversal predictor: tap `i` contributes
/// `dq[i] >> (i + 1)`.
const TAPS: usize = 6;

fn sample_count(scale: u32) -> usize {
    2048 << scale
}

fn samples(scale: u32) -> Vec<i16> {
    audio(0x6721, sample_count(scale))
}

/// Shared codec state.
#[derive(Debug, Clone, Default)]
struct Codec {
    /// Quantised-difference history (newest first).
    dq: [i64; TAPS],
    /// Step-size index.
    index: i64,
}

impl Codec {
    /// The transversal prediction: `sum_i dq[i] >> (i+1)`.
    fn predict(&self) -> i64 {
        (0..TAPS).map(|i| self.dq[i] >> (i + 1)).sum()
    }

    /// Reconstructs the signed quantised difference for `code` and
    /// advances the adaptation state.
    fn reconstruct(&mut self, code: u8) -> i64 {
        let step = STEPS[self.index as usize] as i64;
        let mut dqv = step >> 3;
        if code & 4 != 0 {
            dqv += step;
        }
        if code & 2 != 0 {
            dqv += step >> 1;
        }
        if code & 1 != 0 {
            dqv += step >> 2;
        }
        if code & 8 != 0 {
            dqv = -dqv;
        }
        for i in (1..TAPS).rev() {
            self.dq[i] = self.dq[i - 1];
        }
        self.dq[0] = dqv;
        self.index = (self.index + INDEX_ADJUST[(code & 7) as usize] as i64).clamp(0, 88);
        dqv
    }

    /// Quantises one sample, returning the 4-bit code.
    fn encode(&mut self, sample: i64) -> u8 {
        let se = self.predict();
        let step = STEPS[self.index as usize] as i64;
        let mut diff = sample - se;
        let sign = if diff < 0 { 8u8 } else { 0 };
        if diff < 0 {
            diff = -diff;
        }
        let mut code = 0u8;
        if diff >= step {
            code |= 4;
            diff -= step;
        }
        if diff >= step >> 1 {
            code |= 2;
            diff -= step >> 1;
        }
        if diff >= step >> 2 {
            code |= 1;
        }
        self.reconstruct(code | sign);
        code | sign
    }

    /// Decodes one code, returning the reconstructed sample.
    fn decode(&mut self, code: u8) -> i64 {
        let se = self.predict();
        let dqv = self.reconstruct(code);
        se + dqv
    }
}

fn encode_all(scale: u32) -> (Vec<u8>, u64) {
    let x = samples(scale);
    let mut codec = Codec::default();
    let mut codes = Vec::with_capacity(x.len());
    let mut checksum = 0u64;
    for &s in &x {
        let code = codec.encode(s as i64);
        codes.push(code);
        checksum = checksum.wrapping_mul(31).wrapping_add(code as u64);
    }
    (codes, checksum)
}

/// The prediction tree in assembly: dq history lives in registers
/// `s2, s4, s5, a4, a5, v0` (newest to oldest); leaves `se` in `t3`.
/// Three independent shift/add pairs combine in a balanced tree.
const PREDICT_TREE: &str = r#"    sra  s2, 1, t3
    sra  s4, 2, t4
    addq t3, t4, t3
    sra  s5, 3, t4
    sra  a4, 4, t5
    addq t4, t5, t4
    sra  a5, 5, t5
    sra  v0, 6, t6
    addq t5, t6, t5
    addq t3, t4, t3
    addq t3, t5, t3    ; se = six-tap prediction
"#;

/// The reconstruct + history-advance sequence: code in `t0`, leaves
/// `dqv` in `t7` and shifts the register-resident history.
fn asm_reconstruct(prefix: &str) -> String {
    format!(
        r#"    ; ---- reconstruct dqv from the code and adapt ----
    sll  s1, 1, t5
    addq a2, t5, t5
    ldwu t6, 0(t5)     ; step (positive, <= 32767)
    sra  t6, 3, t7     ; dqv = step >> 3
    and  t0, 4, t8
    beq  t8, {prefix}no4
    addq t7, t6, t7
{prefix}no4:
    and  t0, 2, t8
    beq  t8, {prefix}no2
    sra  t6, 1, t8
    addq t7, t8, t7
{prefix}no2:
    and  t0, 1, t8
    beq  t8, {prefix}no1
    sra  t6, 2, t8
    addq t7, t8, t7
{prefix}no1:
    and  t0, 8, t8
    beq  t8, {prefix}pos
    subq zero, t7, t7
{prefix}pos:
    ; advance the register-resident history (newest -> oldest)
    mov  a5, v0
    mov  a4, a5
    mov  s5, a4
    mov  s4, s5
    mov  s2, s4
    mov  t7, s2
    ; index adaptation
    and  t0, 7, t8
    addq a3, t8, t8
    ldbu t9, 0(t8)
    sextb t9, t9
    addq s1, t9, s1
    cmple zero, s1, t9
    bne  t9, {prefix}ilow
    clr  s1
{prefix}ilow:
    li   t8, 88
    cmple s1, t8, t9
    bne  t9, {prefix}iok
    mov  t8, s1
{prefix}iok:
"#
    )
}

/// Builds the encoder benchmark at the given scale.
pub fn encode_program(scale: u32) -> Program {
    let x = samples(scale);
    let adjust_bytes: Vec<u8> = INDEX_ADJUST.iter().map(|&v| v as u8).collect();
    let mut src = String::from(".data\n.align 8\n");
    emit_words(&mut src, "pcm", &x);
    emit_words(&mut src, "steps", &STEPS);
    emit_bytes(&mut src, "adjust", &adjust_bytes);
    let reconstruct = asm_reconstruct("e_");
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, pcm
    li   a1, {nsamples}
    la   a2, steps
    la   a3, adjust
    clr  s0            ; code checksum
    clr  s1            ; step index
    clr  s2            ; dq[0]
    clr  s4            ; dq[1]
    clr  s5            ; dq[2]
    clr  a4            ; dq[3]
    clr  a5            ; dq[4]
    clr  v0            ; dq[5]
    clr  s3            ; i
sample_loop:
    cmplt s3, a1, t9
    beq  t9, done
    sll  s3, 1, t1
    addq a0, t1, t1
    ldwu t2, 0(t1)
    sextw t2, t2       ; sample
{predict}
    subq t2, t3, t3    ; diff = sample - se
    ; ---- quantise against the current step ----
    sll  s1, 1, t5
    addq a2, t5, t5
    ldwu t6, 0(t5)     ; step
    clr  t0            ; code
    cmple zero, t3, t9
    bne  t9, positive
    li   t0, 8         ; sign bit
    subq zero, t3, t3
positive:
    cmple t6, t3, t9
    beq  t9, bit2
    bis  t0, 4, t0
    subq t3, t6, t3
bit2:
    sra  t6, 1, t7
    cmple t7, t3, t9
    beq  t9, bit1
    bis  t0, 2, t0
    subq t3, t7, t3
bit1:
    sra  t6, 2, t7
    cmple t7, t3, t9
    beq  t9, quantised
    bis  t0, 1, t0
quantised:
    sll  s0, 5, t9     ; checksum = checksum*31 + code
    subq t9, s0, s0
    addq s0, t0, s0
{reconstruct}
    addq s3, 1, s3
    br   sample_loop
done:
    outq s0
    outq s2
    halt
"#,
        nsamples = x.len(),
        predict = PREDICT_TREE,
        reconstruct = reconstruct,
    );
    assemble(&src).expect("g721 encode kernel must assemble")
}

/// Expected encoder output.
pub fn encode_reference(scale: u32) -> Vec<u64> {
    let x = samples(scale);
    let mut codec = Codec::default();
    let mut checksum = 0u64;
    for &s in &x {
        let code = codec.encode(s as i64);
        checksum = checksum.wrapping_mul(31).wrapping_add(code as u64);
    }
    vec![checksum, codec.dq[0] as u64]
}

/// Builds the decoder benchmark: reconstructs PCM from the code stream
/// produced by the (reference) encoder.
pub fn decode_program(scale: u32) -> Program {
    let (codes, _) = encode_all(scale);
    let adjust_bytes: Vec<u8> = INDEX_ADJUST.iter().map(|&v| v as u8).collect();
    let mut src = String::from(".data\n.align 8\n");
    emit_bytes(&mut src, "codes", &codes);
    emit_words(&mut src, "steps", &STEPS);
    emit_bytes(&mut src, "adjust", &adjust_bytes);
    let reconstruct = asm_reconstruct("d_");
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, codes
    li   a1, {ncodes}
    la   a2, steps
    la   a3, adjust
    clr  s0            ; sample checksum
    clr  s1            ; step index
    clr  s2
    clr  s4
    clr  s5
    clr  a4
    clr  a5
    clr  v0
    clr  s3            ; i
code_loop:
    cmplt s3, a1, t9
    beq  t9, done
    addq a0, s3, t1
    ldbu t0, 0(t1)     ; code
{predict}
    mov  t3, t1        ; hold se across the reconstruct
{reconstruct}
    addq t1, t7, t7    ; sample = se + dqv
    sll  s0, 5, t9     ; checksum = checksum*31 + sample
    subq t9, s0, s0
    addq s0, t7, s0
    addq s3, 1, s3
    br   code_loop
done:
    outq s0
    outq s2
    halt
"#,
        ncodes = codes.len(),
        predict = PREDICT_TREE,
        reconstruct = reconstruct,
    );
    assemble(&src).expect("g721 decode kernel must assemble")
}

/// Expected decoder output.
pub fn decode_reference(scale: u32) -> Vec<u64> {
    let (codes, _) = encode_all(scale);
    let mut codec = Codec::default();
    let mut checksum = 0u64;
    for &code in &codes {
        let sample = codec.decode(code);
        checksum = checksum.wrapping_mul(31).wrapping_add(sample as u64);
    }
    vec![checksum, codec.dq[0] as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn encode_matches_reference() {
        let prog = encode_program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(100_000_000).expect("halts");
        assert_eq!(emu.outq(), encode_reference(0).as_slice());
    }

    #[test]
    fn decode_matches_reference() {
        let prog = decode_program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(100_000_000).expect("halts");
        assert_eq!(emu.outq(), decode_reference(0).as_slice());
    }

    #[test]
    fn adpcm_tracks_the_waveform() {
        // Decoded samples must follow the input: RMS error well below
        // the signal power.
        let x = samples(0);
        let (codes, _) = encode_all(0);
        let mut codec = Codec::default();
        let mut err2 = 0i64;
        let mut sig2 = 0i64;
        for (i, &code) in codes.iter().enumerate() {
            let rec = codec.decode(code);
            let e = rec - x[i] as i64;
            err2 += e * e;
            sig2 += (x[i] as i64) * (x[i] as i64);
        }
        assert!(err2 * 5 < sig2, "ADPCM error too large: {err2} vs {sig2}");
    }

    #[test]
    fn codes_use_full_nibble_range() {
        let (codes, _) = encode_all(0);
        let distinct: std::collections::HashSet<u8> = codes.iter().copied().collect();
        assert!(distinct.len() > 8, "quantiser must exercise many codes");
        assert!(codes.iter().all(|&c| c < 16));
    }

    #[test]
    fn predictor_is_a_six_tap_filter() {
        let c = Codec {
            dq: [64, 64, 64, 64, 64, 64],
            ..Codec::default()
        };
        // 32 + 16 + 8 + 4 + 2 + 1
        assert_eq!(c.predict(), 63);
    }
}
