//! `perl`-like kernel: byte-wise string processing.
//!
//! Mirrors the SPECint95 `perl` scrabble-game workload: letter-score
//! table lookups with positional bonuses, plus substring matching —
//! dominated by sub-8-bit operand values.

use crate::data::{emit_bytes, text};
use nwo_isa::{assemble, Program};
use std::fmt::Write;

/// Scrabble letter values for a–z.
const SCORES: [u8; 26] = [
    1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3, 1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10,
];

fn input_len(scale: u32) -> usize {
    512 << scale
}

/// Builds the benchmark program at the given scale.
pub fn program(scale: u32) -> Program {
    let input = text(0x9e51, input_len(scale));
    let mut src = String::from(".data\n");
    emit_bytes(&mut src, "textbuf", &input);
    emit_bytes(&mut src, "scores", &SCORES);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, textbuf
    li   a1, {len}
    la   a2, scores
    clr  s0            ; total score
    clr  s1            ; pattern matches
    clr  t0            ; i
loop:
    cmplt t0, a1, t1
    beq  t1, done
    addq a0, t0, t2
    ldbu t3, 0(t2)     ; c = text[i]
    cmpult t3, 'a', t4
    bne  t4, pattern   ; separators score nothing
    cmpule t3, 'z', t4
    beq  t4, pattern
    subq t3, 'a', t5
    addq a2, t5, t6
    ldbu t7, 0(t6)     ; letter score
    and  t0, 7, t8     ; every 8th position doubles (branchless cmov)
    addq t7, t7, t9
    cmoveq t8, t9, t7
    addq s0, t7, s0
pattern:
    addq t0, 2, t8     ; match "the" at i (needs i+2 in range)
    cmplt t8, a1, t9
    beq  t9, next
    subq t3, 't', t9
    bne  t9, next
    ldbu t9, 1(t2)
    subq t9, 'h', t9
    bne  t9, next
    ldbu t9, 2(t2)
    subq t9, 'e', t9
    bne  t9, next
    addq s1, 1, s1
next:
    addq t0, 1, t0
    br   loop
done:
    outq s0
    outq s1
    halt
"#,
        len = input.len()
    );
    assemble(&src).expect("perl kernel must assemble")
}

/// Reference implementation: the expected `outq` stream.
pub fn reference(scale: u32) -> Vec<u64> {
    let input = text(0x9e51, input_len(scale));
    let mut total = 0u64;
    let mut matches = 0u64;
    for (i, &c) in input.iter().enumerate() {
        if c.is_ascii_lowercase() {
            let mut score = SCORES[(c - b'a') as usize] as u64;
            if i % 8 == 0 {
                score *= 2;
            }
            total += score;
        }
        if i + 2 < input.len() && &input[i..i + 3] == b"the" {
            matches += 1;
        }
    }
    vec![total, matches]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn matches_reference() {
        let prog = program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(10_000_000).expect("halts");
        assert_eq!(emu.outq(), reference(0).as_slice());
    }

    #[test]
    fn scales_change_input() {
        assert_ne!(reference(0), reference(1));
    }
}
