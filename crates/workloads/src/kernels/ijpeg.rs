//! `ijpeg`-like kernel: 8×8 integer forward DCT and quantisation.
//!
//! Mirrors SPECint95 `ijpeg`: block transforms over 8-bit pixels with a
//! 16-bit-narrow coefficient table — the narrow-arithmetic-heavy profile
//! the paper credits for `ijpeg`'s large power savings.

use crate::data::{emit_bytes, emit_words, image};
use nwo_isa::{assemble, Program};
use std::fmt::Write;

const W: usize = 64;

/// Integer DCT basis: `round(cos((2x+1)·u·π/16) · 64)`.
fn dct_table() -> [i16; 64] {
    let mut c = [0i16; 64];
    for u in 0..8 {
        for x in 0..8 {
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            c[u * 8 + x] = (angle.cos() * 64.0).round() as i16;
        }
    }
    c
}

/// Quantisation shift per diagonal (coarser for high frequencies).
const QSHIFT: [u8; 8] = [2, 3, 3, 4, 4, 5, 5, 6];

fn block_count(scale: u32) -> usize {
    16 << scale
}

/// Fully-unrolled 8-term inner product for pass 1, with two independent
/// accumulators — the code shape `cc -O5` produces for fixed-trip-count
/// DCT loops. Expects `t0 = u`, `t1 = y`, `s4 = block base`; leaves the
/// sum in `t3`.
fn unrolled_pass1_body() -> String {
    let mut out = String::new();
    // crow = cof + u*16 (8 words per row); prow = img + base + y*64.
    out.push_str(
        "    sll  t0, 4, t4\n    addq a1, t4, t4    ; coefficient row\n    sll  t1, 6, t5\n    addq t5, s4, t5\n    addq a0, t5, t5    ; pixel row\n    clr  t3\n    clr  t6\n",
    );
    for x in 0..8 {
        let acc = if x % 2 == 0 { "t3" } else { "t6" };
        let _ = write!(
            out,
            "    ldwu t7, {co}(t4)\n    sextw t7, t7\n    ldbu t8, {px}(t5)\n    mulq t7, t8, t7\n    addq {acc}, t7, {acc}\n",
            co = 2 * x,
            px = x,
        );
    }
    out.push_str("    addq t3, t6, t3\n");
    out
}

/// Fully-unrolled pass-2 inner product: `t0 = u`, `t1 = v`, sum in `t3`.
fn unrolled_pass2_body() -> String {
    let mut out = String::new();
    // crow = cof + v*16; trow = tmp + u*64 (8 quads per row).
    out.push_str(
        "    sll  t1, 4, t4\n    addq a1, t4, t4    ; coefficient row\n    sll  t0, 6, t5\n    addq a2, t5, t5    ; tmp row\n    clr  t3\n    clr  t6\n",
    );
    for y in 0..8 {
        let acc = if y % 2 == 0 { "t3" } else { "t6" };
        let _ = write!(
            out,
            "    ldwu t7, {co}(t4)\n    sextw t7, t7\n    ldq  t8, {tq}(t5)\n    mulq t7, t8, t7\n    addq {acc}, t7, {acc}\n",
            co = 2 * y,
            tq = 8 * y,
        );
    }
    out.push_str("    addq t3, t6, t3\n");
    out
}

/// Builds the benchmark program at the given scale.
pub fn program(scale: u32) -> Program {
    let img = image(0x1336, W, W);
    let cof = dct_table();
    let mut src = String::from(".data\n");
    emit_bytes(&mut src, "img", &img);
    let _ = writeln!(src, ".align 8");
    emit_words(&mut src, "cof", &cof);
    emit_bytes(&mut src, "qshift", &QSHIFT);
    let _ = writeln!(src, ".align 8");
    let _ = writeln!(src, "tmp: .space {}", 64 * 8);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, img
    la   a1, cof
    la   a2, tmp
    la   a3, qshift
    li   s3, {nblocks}
    clr  s0            ; checksum
    clr  s1            ; nonzero coefficients
    clr  s2            ; block counter
block_loop:
    cmplt s2, s3, t9
    beq  t9, done
    ; base = (by*64 + bx) with bx = (b%8)*8, by = ((b/8)%8)*8
    and  s2, 7, t0
    sll  t0, 3, t0     ; bx
    srl  s2, 3, t1
    and  t1, 7, t1
    sll  t1, 3, t1     ; by
    sll  t1, 6, t2     ; by*64
    addq t2, t0, s4    ; base
    ; ---- pass 1: tmp[u][y] = sum_x cof[u][x] * p(x, y) ----
    clr  t0            ; u
p1_u:
    cmplt t0, 8, t9
    beq  t9, p2_init
    clr  t1            ; y
p1_y:
    cmplt t1, 8, t9
    beq  t9, p1_u_next
{pass1_body}
    sll  t0, 3, t4
    addq t4, t1, t4
    sll  t4, 3, t4
    addq a2, t4, t4
    stq  t3, 0(t4)     ; tmp[u*8+y]
    addq t1, 1, t1
    br   p1_y
p1_u_next:
    addq t0, 1, t0
    br   p1_u
p2_init:
    ; ---- pass 2: q[u][v] = (sum_y cof[v][y]*tmp[u][y]) >> 12 >> qshift ----
    clr  t0            ; u
p2_u:
    cmplt t0, 8, t9
    beq  t9, block_next
    clr  t1            ; v
p2_v:
    cmplt t1, 8, t9
    beq  t9, p2_u_next
{pass2_body}
    sra  t3, 12, t3    ; descale
    addq t0, t1, t4    ; diagonal u+v
    cmpule t4, 7, t5
    bne  t5, diag_ok
    li   t4, 7
diag_ok:
    addq a3, t4, t4
    ldbu t5, 0(t4)     ; qshift
    sra  t3, t5, t3    ; quantise
    sll  s0, 5, t9    ; strength-reduced *31
    subq t9, s0, s0
    addq s0, t3, s0
    beq  t3, p2_zero
    addq s1, 1, s1
p2_zero:
    addq t1, 1, t1
    br   p2_v
p2_u_next:
    addq t0, 1, t0
    br   p2_u
block_next:
    addq s2, 1, s2
    br   block_loop
done:
    outq s0
    outq s1
    halt
"#,
        nblocks = block_count(scale),
        pass1_body = unrolled_pass1_body(),
        pass2_body = unrolled_pass2_body(),
    );
    assemble(&src).expect("ijpeg kernel must assemble")
}

/// Reference implementation: the expected `outq` stream.
#[allow(clippy::needless_range_loop)] // indexing mirrors the DCT math
pub fn reference(scale: u32) -> Vec<u64> {
    let img = image(0x1336, W, W);
    let cof = dct_table();
    let mut checksum = 0u64;
    let mut nonzero = 0u64;
    for b in 0..block_count(scale) {
        let bx = (b % 8) * 8;
        let by = ((b / 8) % 8) * 8;
        let p = |x: usize, y: usize| img[(by + y) * W + bx + x] as i64;
        let mut tmp = [[0i64; 8]; 8];
        for u in 0..8 {
            for y in 0..8 {
                let mut acc = 0i64;
                for x in 0..8 {
                    acc += cof[u * 8 + x] as i64 * p(x, y);
                }
                tmp[u][y] = acc;
            }
        }
        for u in 0..8 {
            for v in 0..8 {
                let mut acc = 0i64;
                for y in 0..8 {
                    acc += cof[v * 8 + y] as i64 * tmp[u][y];
                }
                let descaled = acc >> 12;
                let q = descaled >> QSHIFT[(u + v).min(7)];
                checksum = checksum.wrapping_mul(31).wrapping_add(q as u64);
                if q != 0 {
                    nonzero += 1;
                }
            }
        }
    }
    vec![checksum, nonzero]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn matches_reference() {
        let prog = program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(50_000_000).expect("halts");
        assert_eq!(emu.outq(), reference(0).as_slice());
    }

    #[test]
    fn quantisation_zeroes_some_coefficients() {
        // The noisy gradient image keeps plenty of AC energy, but
        // quantisation must still kill a meaningful share.
        let r = reference(0);
        let total = 64 * block_count(0) as u64;
        assert!(r[1] < total, "nonzero {} of {total}", r[1]);
        assert!(r[1] > total / 4);
    }

    #[test]
    fn dct_table_shape() {
        let c = dct_table();
        // Row 0 is flat (DC basis).
        assert!(c[0..8].iter().all(|&v| v == 64));
        // All coefficients fit comfortably in 16-bit-narrow range.
        assert!(c.iter().all(|&v| (-64..=64).contains(&v)));
    }
}
