//! `mpeg2`-like kernels: motion estimation and IDCT reconstruction.
//!
//! Mirrors MediaBench `mpeg2-encode` (whose cycles go to block-matching
//! SAD over 8-bit pixels) and `mpeg2-decode` (inverse DCT plus
//! saturation to 8-bit) — the byte-narrow, loop-parallel profile that
//! benefits most from operation packing.

use crate::data::{emit_bytes, emit_words, image};
use nwo_isa::{assemble, Program};
use std::fmt::Write;

const FRAME: usize = 48;
/// Block origins: 4 + 8·b for b in 0..4, so a ±4 search stays in frame.
const GRID: usize = 4;
const SEARCH: i64 = 4;

fn pass_count(scale: u32) -> usize {
    1 << scale
}

/// The fully-unrolled 8-column absolute-difference body: `t7`/`t8` hold
/// the current/reference row pointers; accumulates into `t4` (even
/// columns) and `at` (odd columns).
fn unrolled_sad_body() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for col in 0..8 {
        let acc = if col % 2 == 0 { "t4" } else { "at" };
        let _ = write!(
            out,
            "    ldbu t9, {col}(t7)\n    ldbu a4, {col}(t8)\n    subq t9, a4, t9\n    sra  t9, 63, a4    ; branchless abs\n    xor  t9, a4, t9\n    subq t9, a4, t9\n    addq {acc}, t9, {acc}\n",
        );
    }
    out
}

fn frames() -> (Vec<u8>, Vec<u8>) {
    let f0 = image(0x0e60, FRAME, FRAME);
    // Frame 1: frame 0 shifted by (2, 1) with fresh noise, like real
    // motion.
    let noise = image(0x0e61, FRAME, FRAME);
    let mut f1 = vec![0u8; FRAME * FRAME];
    for y in 0..FRAME {
        for x in 0..FRAME {
            let sx = x.saturating_sub(2).min(FRAME - 1);
            let sy = y.saturating_sub(1).min(FRAME - 1);
            let v = f0[sy * FRAME + sx] as u32 + (noise[y * FRAME + x] as u32 & 7);
            f1[y * FRAME + x] = v.min(255) as u8;
        }
    }
    (f0, f1)
}

/// Builds the motion-estimation (encode) benchmark at the given scale.
pub fn encode_program(scale: u32) -> Program {
    let (f0, f1) = frames();
    let mut src = String::from(".data\n");
    emit_bytes(&mut src, "ref_frame", &f0);
    emit_bytes(&mut src, "cur_frame", &f1);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, ref_frame
    la   a1, cur_frame
    li   a2, {passes}
    clr  s0            ; total best SAD
    clr  s1            ; motion-vector checksum
    clr  s5            ; pass
pass_loop:
    cmplt s5, a2, t9
    beq  t9, done
    clr  s2            ; block index (0..15)
block_loop:
    cmplt s2, 16, t9
    beq  t9, pass_next
    ; block origin = (4 + 8*(b%4), 4 + 8*(b/4))
    and  s2, 3, t0
    sll  t0, 3, t0
    addq t0, 4, t0     ; ox
    srl  s2, 2, t1
    sll  t1, 3, t1
    addq t1, 4, t1     ; oy
    mulq t1, {frame}, t2
    addq t2, t0, s3    ; cur base = oy*FRAME + ox
    ; ---- search dx,dy in [-4,4] ----
    li   t0, 1
    sll  t0, 40, s4    ; best (sad<<8 | vec) packed, init huge
    li   v0, -4        ; dy
dy_loop:
    cmple v0, 4, t9
    beq  t9, search_done
    li   a3, -4        ; dx
dx_loop:
    cmple a3, 4, t9
    beq  t9, dy_next
    ; ref base = (oy+dy)*FRAME + ox+dx = cur base + dy*FRAME + dx
    mulq v0, {frame}, t2
    addq t2, a3, t2
    addq s3, t2, t3    ; ref base
    ; ---- SAD over the 8x8 block (inner loop fully unrolled, two
    ;      accumulators, as cc -O5 emits) ----
    clr  t4            ; sad accumulator (even columns)
    clr  at            ; sad accumulator (odd columns)
    clr  t5            ; row
sad_row:
    cmplt t5, 8, t9
    beq  t9, sad_done
    mulq t5, {frame}, t6
    addq s3, t6, t7
    addq a1, t7, t7    ; current-frame row pointer
    addq t3, t6, t8
    addq a0, t8, t8    ; reference-frame row pointer
{sad_body}
    addq t5, 1, t5
    br   sad_row
sad_done:
    addq t4, at, t4    ; combine the accumulators
    ; pack (sad << 8) | ((dy+4)*9 + dx+4); smaller wins, ties to the
    ; earlier (smaller-code) vector.
    sll  t4, 8, t4
    addq v0, 4, t5
    mulq t5, 9, t5
    addq t5, a3, t5
    addq t5, 4, t5
    bis  t4, t5, t4
    cmplt t4, s4, t9
    beq  t9, dx_next
    mov  t4, s4
dx_next:
    addq a3, 1, a3
    br   dx_loop
dy_next:
    addq v0, 1, v0
    br   dy_loop
search_done:
    srl  s4, 8, t0     ; best sad
    addq s0, t0, s0
    and  s4, 255, t0   ; best vector code
    sll  s1, 5, t9    ; strength-reduced *31
    subq t9, s1, s1
    addq s1, t0, s1
    addq s2, 1, s2
    br   block_loop
pass_next:
    addq s5, 1, s5
    br   pass_loop
done:
    outq s0
    outq s1
    halt
"#,
        passes = pass_count(scale),
        frame = FRAME,
        sad_body = unrolled_sad_body(),
    );
    assemble(&src).expect("mpeg2 encode kernel must assemble")
}

/// Expected encoder output.
pub fn encode_reference(scale: u32) -> Vec<u64> {
    let (f0, f1) = frames();
    let mut total_sad = 0u64;
    let mut checksum = 0u64;
    for _pass in 0..pass_count(scale) {
        for b in 0..GRID * GRID {
            let ox = 4 + 8 * (b % 4);
            let oy = 4 + 8 * (b / 4);
            let mut best = 1 << 40;
            for dy in -SEARCH..=SEARCH {
                for dx in -SEARCH..=SEARCH {
                    let mut sad = 0i64;
                    for row in 0..8usize {
                        for col in 0..8usize {
                            let cur = f1[(oy + row) * FRAME + ox + col] as i64;
                            let rx = (ox as i64 + dx) as usize + col;
                            let ry = (oy as i64 + dy) as usize + row;
                            let rfv = f0[ry * FRAME + rx] as i64;
                            sad += (cur - rfv).abs();
                        }
                    }
                    let code = ((dy + 4) * 9 + dx + 4) as u64;
                    let packed = ((sad as u64) << 8) | code;
                    if packed < best {
                        best = packed;
                    }
                }
            }
            total_sad = total_sad.wrapping_add(best >> 8);
            checksum = checksum.wrapping_mul(31).wrapping_add(best & 255);
        }
    }
    vec![total_sad, checksum]
}

/// Integer DCT basis, shared with the decoder.
fn dct_table() -> [i16; 64] {
    let mut c = [0i16; 64];
    for u in 0..8 {
        for x in 0..8 {
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            c[u * 8 + x] = (angle.cos() * 64.0).round() as i16;
        }
    }
    c
}

/// Forward-DCT coefficient blocks the decoder consumes (what a real
/// decoder would read from the bitstream after dequantisation).
fn coef_blocks(scale: u32) -> Vec<i16> {
    let img = image(0x0de0, FRAME, FRAME);
    let cof = dct_table();
    let nblocks = 16 << scale;
    let mut out = Vec::with_capacity(nblocks * 64);
    for b in 0..nblocks {
        let bx = (b % 5) * 8;
        let by = ((b / 5) % 5) * 8;
        let p = |x: usize, y: usize| img[(by + y) * FRAME + bx + x] as i64 - 128;
        for u in 0..8 {
            for v in 0..8 {
                let mut acc = 0i64;
                for x in 0..8 {
                    for y in 0..8 {
                        acc += cof[u * 8 + x] as i64 * cof[v * 8 + y] as i64 * p(x, y);
                    }
                }
                // Normalise: the 2-D basis gain is 64*64*16 for DC; use a
                // uniform >>14 so coefficients stay 16-bit.
                out.push((acc >> 14) as i16);
            }
        }
    }
    out
}

/// Fully-unrolled pass-1 IDCT inner product: `t0 = x`, `t1 = v`,
/// block base (bytes) in `s3`; sum left in `t3`.
fn unrolled_idct1_body() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str(
        "    sll  t0, 1, t4\n    addq a1, t4, t4    ; &cof[0][x]\n    sll  t1, 1, t5\n    addq t5, s3, t5\n    addq a0, t5, t5    ; &F[0][v]\n    clr  t3\n    clr  t6\n",
    );
    for u in 0..8 {
        let acc = if u % 2 == 0 { "t3" } else { "t6" };
        let _ = write!(
            out,
            "    ldwu t7, {off}(t4)\n    sextw t7, t7\n    ldwu t8, {off}(t5)\n    sextw t8, t8\n    mulq t7, t8, t7\n    addq {acc}, t7, {acc}\n",
            off = 16 * u,
        );
    }
    out.push_str("    addq t3, t6, t3\n");
    out
}

/// Fully-unrolled pass-2 IDCT inner product: `t0 = x`, `t1 = y`;
/// sum left in `t3`.
fn unrolled_idct2_body() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str(
        "    sll  t1, 1, t4\n    addq a1, t4, t4    ; &cof[0][y]\n    sll  t0, 6, t5\n    addq a2, t5, t5    ; &tmp[x][0]\n    clr  t3\n    clr  t6\n",
    );
    for v in 0..8 {
        let acc = if v % 2 == 0 { "t3" } else { "t6" };
        let _ = write!(
            out,
            "    ldwu t7, {co}(t4)\n    sextw t7, t7\n    ldq  t8, {tq}(t5)\n    mulq t7, t8, t7\n    addq {acc}, t7, {acc}\n",
            co = 16 * v,
            tq = 8 * v,
        );
    }
    out.push_str("    addq t3, t6, t3\n");
    out
}

/// Builds the IDCT-reconstruction (decode) benchmark at the given scale.
pub fn decode_program(scale: u32) -> Program {
    let coefs = coef_blocks(scale);
    let cof = dct_table();
    let nblocks = coefs.len() / 64;
    let mut src = String::from(".data\n.align 8\n");
    emit_words(&mut src, "coefs", &coefs);
    emit_words(&mut src, "cof", &cof);
    let _ = writeln!(src, "tmp: .space {}", 64 * 8);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, coefs
    la   a1, cof
    la   a2, tmp
    li   a3, {nblocks}
    clr  s0            ; checksum of saturated pixels
    clr  s1            ; saturation events
    clr  s2            ; block
blk:
    cmplt s2, a3, t9
    beq  t9, done
    sll  s2, 7, s3     ; block base in words (64 coefs * 2 bytes)
    ; ---- pass 1: tmp[x][v] = sum_u cof[u][x] * F[u][v] ----
    clr  t0            ; x
i1_x:
    cmplt t0, 8, t9
    beq  t9, i2_init
    clr  t1            ; v
i1_v:
    cmplt t1, 8, t9
    beq  t9, i1_x_next
{idct1_body}
    sll  t0, 3, t4
    addq t4, t1, t4
    sll  t4, 3, t4
    addq a2, t4, t4
    stq  t3, 0(t4)
    addq t1, 1, t1
    br   i1_v
i1_x_next:
    addq t0, 1, t0
    br   i1_x
i2_init:
    ; ---- pass 2: p(x,y) = clamp((sum_v cof[v][y]*tmp[x][v]) >> 16 + 128) ----
    clr  t0            ; x
i2_x:
    cmplt t0, 8, t9
    beq  t9, blk_next
    clr  t1            ; y
i2_y:
    cmplt t1, 8, t9
    beq  t9, i2_x_next
{idct2_body}
    sra  t3, 16, t3    ; descale the unnormalised basis round trip
    addq t3, 128, t3   ; re-bias
    cmple zero, t3, t9
    bne  t9, not_low
    clr  t3
    addq s1, 1, s1
not_low:
    li   t4, 255
    cmple t3, t4, t9
    bne  t9, not_high
    mov  t4, t3
    addq s1, 1, s1
not_high:
    sll  s0, 5, t9    ; strength-reduced *31
    subq t9, s0, s0
    addq s0, t3, s0
    addq t1, 1, t1
    br   i2_y
i2_x_next:
    addq t0, 1, t0
    br   i2_x
blk_next:
    addq s2, 1, s2
    br   blk
done:
    outq s0
    outq s1
    halt
"#,
        nblocks = nblocks,
        idct1_body = unrolled_idct1_body(),
        idct2_body = unrolled_idct2_body(),
    );
    assemble(&src).expect("mpeg2 decode kernel must assemble")
}

/// Expected decoder output.
#[allow(clippy::needless_range_loop)] // indexing mirrors the IDCT math
pub fn decode_reference(scale: u32) -> Vec<u64> {
    let coefs = coef_blocks(scale);
    let cof = dct_table();
    let nblocks = coefs.len() / 64;
    let mut checksum = 0u64;
    let mut saturated = 0u64;
    for b in 0..nblocks {
        let f = |u: usize, v: usize| coefs[b * 64 + u * 8 + v] as i64;
        let mut tmp = [[0i64; 8]; 8];
        for x in 0..8 {
            for v in 0..8 {
                let mut acc = 0i64;
                for u in 0..8 {
                    acc += cof[u * 8 + x] as i64 * f(u, v);
                }
                tmp[x][v] = acc;
            }
        }
        for x in 0..8 {
            for y in 0..8 {
                let mut acc = 0i64;
                for v in 0..8 {
                    acc += cof[v * 8 + y] as i64 * tmp[x][v];
                }
                let mut p = (acc >> 16) + 128;
                if p < 0 {
                    p = 0;
                    saturated += 1;
                } else if p > 255 {
                    p = 255;
                    saturated += 1;
                }
                checksum = checksum.wrapping_mul(31).wrapping_add(p as u64);
            }
        }
    }
    vec![checksum, saturated]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn encode_matches_reference() {
        let prog = encode_program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(100_000_000).expect("halts");
        assert_eq!(emu.outq(), encode_reference(0).as_slice());
    }

    #[test]
    fn decode_matches_reference() {
        let prog = decode_program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(100_000_000).expect("halts");
        assert_eq!(emu.outq(), decode_reference(0).as_slice());
    }

    #[test]
    fn motion_search_finds_the_synthetic_shift() {
        // Frame 1 is frame 0 shifted by (2, 1): the dominant motion
        // vector should be dx=-2, dy=-1 -> code ((-1)+4)*9 + (-2)+4 = 29.
        let (f0, f1) = frames();
        let mut histogram = [0u32; 81];
        for b in 0..16 {
            let ox = 4 + 8 * (b % 4);
            let oy = 4 + 8 * (b / 4);
            let mut best = (i64::MAX, 0usize);
            for dy in -4i64..=4 {
                for dx in -4i64..=4 {
                    let mut sad = 0i64;
                    for row in 0..8usize {
                        for col in 0..8usize {
                            let cur = f1[(oy + row) * FRAME + ox + col] as i64;
                            let rfv = f0[((oy as i64 + dy) as usize + row) * FRAME
                                + (ox as i64 + dx) as usize
                                + col] as i64;
                            sad += (cur - rfv).abs();
                        }
                    }
                    let code = ((dy + 4) * 9 + dx + 4) as usize;
                    if sad < best.0 {
                        best = (sad, code);
                    }
                }
            }
            histogram[best.1] += 1;
        }
        let expected_code = 3 * 9 + 2; // dy=-1, dx=-2
        assert!(
            histogram[expected_code] >= 10,
            "most blocks should find the global shift, histogram {histogram:?}"
        );
    }

    #[test]
    fn idct_saturates_rarely_on_natural_blocks() {
        let r = decode_reference(0);
        let total = 64 * (coef_blocks(0).len() / 64) as u64;
        assert!(r[1] < total / 4, "saturation {} of {total}", r[1]);
    }
}
