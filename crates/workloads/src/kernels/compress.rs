//! `compress`-like kernel: LZW compression.
//!
//! Mirrors SPECint95 `compress`: a real LZW encoder over a hashed
//! dictionary. Codes stay below 4096 (12-bit — narrow), while the hash
//! probing exercises address arithmetic (33-bit operands).

use crate::data::{emit_bytes, text};
use nwo_isa::{assemble, Program};
use std::fmt::Write;

const TABLE_SIZE: usize = 4096;
const MAX_CODE: u64 = 4096;
/// Fits in a signed 32-bit immediate for `li` (golden-ratio multiplier).
const HASH_MULT: u64 = 0x61c8_8647;

fn input_len(scale: u32) -> usize {
    768 << scale
}

/// Builds the benchmark program at the given scale.
pub fn program(scale: u32) -> Program {
    let input = text(0xc0de, input_len(scale));
    let mut src = String::from(".data\n");
    emit_bytes(&mut src, "textbuf", &input);
    let _ = writeln!(src, ".align 8");
    let _ = writeln!(src, "keys: .space {}", TABLE_SIZE * 8);
    let _ = writeln!(src, "vals: .space {}", TABLE_SIZE * 8);
    let _ = write!(
        src,
        r#"
    .text
main:
    la   a0, textbuf
    li   a1, {len}
    la   a2, keys
    la   a3, vals
    li   a4, {hash_mult}
    li   a5, 4095          ; table index mask
    li   s3, {max_code}
    clr  s0                ; emitted code count
    clr  s1                ; checksum
    li   s2, 256           ; next_code
    ldbu t0, 0(a0)         ; prefix = first byte
    li   t1, 1             ; i
loop:
    cmplt t1, a1, t2
    beq  t2, flush
    addq a0, t1, t2
    ldbu t3, 0(t2)         ; ch
    sll  t0, 8, t4
    bis  t4, t3, t4        ; key = prefix<<8 | ch
    mulq t4, a4, t5        ; hash
    srl  t5, 8, t5
    and  t5, a5, t5        ; slot
probe:
    sll  t5, 3, t6
    addq a2, t6, t7
    ldq  t8, 0(t7)         ; stored key+1
    beq  t8, miss
    addq t4, 1, t9
    subq t8, t9, t9
    bne  t9, collide
    addq a3, t6, t7        ; hit: prefix = vals[slot]
    ldq  t0, 0(t7)
    addq t1, 1, t1
    br   loop
collide:
    addq t5, 1, t5
    and  t5, a5, t5
    br   probe
miss:
    ; emit prefix: checksum = checksum*31 + prefix
    sll  s1, 5, t9    ; strength-reduced *31
    subq t9, s1, s1
    addq s1, t0, s1
    addq s0, 1, s0
    ; insert if the dictionary is not full
    cmplt s2, s3, t9
    beq  t9, noinsert
    addq t4, 1, t9
    stq  t9, 0(t7)         ; keys[slot] = key+1 (t7 still -> keys)
    addq a3, t6, t9
    stq  s2, 0(t9)         ; vals[slot] = next_code
    addq s2, 1, s2
noinsert:
    mov  t3, t0            ; prefix = ch
    addq t1, 1, t1
    br   loop
flush:
    sll  s1, 5, t9    ; strength-reduced *31
    subq t9, s1, s1
    addq s1, t0, s1
    addq s0, 1, s0
    outq s0
    outq s1
    outq s2
    halt
"#,
        len = input.len(),
        hash_mult = HASH_MULT,
        max_code = MAX_CODE,
    );
    assemble(&src).expect("compress kernel must assemble")
}

/// Reference implementation: the expected `outq` stream.
pub fn reference(scale: u32) -> Vec<u64> {
    let input = text(0xc0de, input_len(scale));
    let mut keys = vec![0u64; TABLE_SIZE];
    let mut vals = vec![0u64; TABLE_SIZE];
    let mut next_code = 256u64;
    let mut count = 0u64;
    let mut checksum = 0u64;
    let mut prefix = input[0] as u64;
    let mut i = 1;
    while i < input.len() {
        let ch = input[i] as u64;
        let key = (prefix << 8) | ch;
        let mut slot = ((key.wrapping_mul(HASH_MULT)) >> 8) as usize & (TABLE_SIZE - 1);
        loop {
            let stored = keys[slot];
            if stored == 0 {
                checksum = checksum.wrapping_mul(31).wrapping_add(prefix);
                count += 1;
                if next_code < MAX_CODE {
                    keys[slot] = key + 1;
                    vals[slot] = next_code;
                    next_code += 1;
                }
                prefix = ch;
                i += 1;
                break;
            }
            if stored == key + 1 {
                prefix = vals[slot];
                i += 1;
                break;
            }
            slot = (slot + 1) & (TABLE_SIZE - 1);
        }
    }
    checksum = checksum.wrapping_mul(31).wrapping_add(prefix);
    count += 1;
    vec![count, checksum, next_code]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::Emulator;

    #[test]
    fn matches_reference() {
        let prog = program(0);
        let mut emu = Emulator::new(&prog);
        emu.run(10_000_000).expect("halts");
        assert_eq!(emu.outq(), reference(0).as_slice());
    }

    #[test]
    fn actually_compresses() {
        let r = reference(0);
        let codes = r[0];
        assert!(
            codes < input_len(0) as u64,
            "LZW must emit fewer codes than input bytes"
        );
        assert!(r[2] > 256, "dictionary must grow");
    }
}
