//! Synthetic benchmark inputs and `.data`-section emission helpers.
//!
//! All inputs are generated from seeded [`Rng`] streams so benchmarks are
//! bit-reproducible. The generators aim for *realistic value
//! distributions*, which is what the paper's optimizations key on:
//! text is skewed ASCII, audio is a bounded 16-bit waveform, images are
//! smooth 8-bit gradients with noise.

use crate::rng::Rng;
use std::fmt::Write;

/// Markov-ish ASCII text: word-like runs of skewed letters separated by
/// spaces and punctuation — compressible like real text (compress, gcc,
/// perl inputs).
pub fn text(seed: u64, len: usize) -> Vec<u8> {
    const LETTERS: &[u8] = b"etaoinshrdlucmfwypvbgkjqxz";
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let word_len = 2 + rng.below(8) as usize;
        for _ in 0..word_len.min(len - out.len()) {
            // Zipf-ish skew: prefer early letters.
            let i = (rng.below(26) * rng.below(26) / 26) as usize;
            out.push(LETTERS[i]);
        }
        if out.len() < len {
            out.push(if rng.below(8) == 0 { b'\n' } else { b' ' });
        }
    }
    out.truncate(len);
    out
}

/// Bounded 16-bit audio: a sum of two sine-ish integer oscillators plus
/// noise, amplitude well inside i16 (gsm, g721 inputs).
pub fn audio(seed: u64, samples: usize) -> Vec<i16> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(samples);
    // Integer resonator: x[n] = (k*x[n-1] >> 14) - x[n-2] approximates a
    // sine without floating point.
    let (mut x1, mut x2) = (1000i64, 0i64);
    let (mut y1, mut y2) = (400i64, 350i64);
    for _ in 0..samples {
        let x0 = ((32700 * x1) >> 14) - x2; // slow oscillator
        let y0 = ((30000 * y1) >> 14) - y2; // faster oscillator
        x2 = x1;
        x1 = x0;
        y2 = y1;
        y1 = y0;
        let noise = rng.range(-64, 64);
        let v = (x0 / 4 + y0 / 8 + noise).clamp(-20000, 20000);
        out.push(v as i16);
    }
    out
}

/// Smooth 8-bit grayscale image with gradients and noise (ijpeg, mpeg2
/// inputs). Row-major, `width * height` bytes.
pub fn image(seed: u64, width: usize, height: usize) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let base = (x * 3 + y * 2) % 200;
            let blob = if (x / 16 + y / 16) % 2 == 0 { 30 } else { 0 };
            let noise = rng.below(16) as usize;
            out.push((base + blob + noise).min(255) as u8);
        }
    }
    out
}

/// A 19×19 go board with random stones: 0 empty, 1 black, 2 white.
pub fn go_board(seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    (0..19 * 19)
        .map(|_| match rng.below(10) {
            0..=3 => 0,
            4..=6 => 1,
            _ => 2,
        })
        .collect()
}

// ----------------------------------------------------------------------
// .data emission helpers
// ----------------------------------------------------------------------

/// Emits `label: .byte …` lines for a byte slice (16 values per line).
pub fn emit_bytes(out: &mut String, label: &str, data: &[u8]) {
    let _ = writeln!(out, "{label}:");
    for chunk in data.chunks(16) {
        let row: Vec<String> = chunk.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(out, "    .byte {}", row.join(", "));
    }
    if data.is_empty() {
        let _ = writeln!(out, "    .space 0");
    }
}

/// Emits `label: .word …` lines for 16-bit values.
pub fn emit_words(out: &mut String, label: &str, data: &[i16]) {
    let _ = writeln!(out, "{label}:");
    for chunk in data.chunks(12) {
        let row: Vec<String> = chunk.iter().map(|w| w.to_string()).collect();
        let _ = writeln!(out, "    .word {}", row.join(", "));
    }
    if data.is_empty() {
        let _ = writeln!(out, "    .space 0");
    }
}

/// Emits `label: .quad …` lines for 64-bit values.
pub fn emit_quads(out: &mut String, label: &str, data: &[i64]) {
    let _ = writeln!(out, "{label}:");
    for chunk in data.chunks(6) {
        let row: Vec<String> = chunk.iter().map(|q| q.to_string()).collect();
        let _ = writeln!(out, "    .quad {}", row.join(", "));
    }
    if data.is_empty() {
        let _ = writeln!(out, "    .space 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_is_reproducible_and_ascii() {
        let a = text(1, 1000);
        let b = text(1, 1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|&c| c.is_ascii()));
        // Mostly letters, with some separators.
        let spaces = a.iter().filter(|&&c| c == b' ' || c == b'\n').count();
        assert!(spaces > 50 && spaces < 500);
    }

    #[test]
    fn audio_is_bounded_and_oscillating() {
        let a = audio(2, 4000);
        assert_eq!(a.len(), 4000);
        assert!(a.iter().all(|&s| (-20000..=20000).contains(&(s as i64))));
        // It must actually move (not a constant).
        let distinct: std::collections::HashSet<i16> = a.iter().copied().collect();
        assert!(distinct.len() > 100);
        // Sign changes show oscillation.
        let flips = a.windows(2).filter(|w| (w[0] < 0) != (w[1] < 0)).count();
        assert!(flips > 10);
    }

    #[test]
    fn image_has_structure() {
        let img = image(3, 64, 64);
        assert_eq!(img.len(), 64 * 64);
        let distinct: std::collections::HashSet<u8> = img.iter().copied().collect();
        assert!(distinct.len() > 30, "gradients need many levels");
    }

    #[test]
    fn board_has_all_three_states() {
        let b = go_board(4);
        assert_eq!(b.len(), 361);
        assert!(b.contains(&0) && b.contains(&1) && b.contains(&2));
        assert!(b.iter().all(|&c| c <= 2));
    }

    #[test]
    fn emitters_produce_assemblable_directives() {
        let mut s = String::from(".data\n");
        emit_bytes(&mut s, "b", &[1, 2, 255]);
        emit_words(&mut s, "w", &[-5, 1000]);
        emit_quads(&mut s, "q", &[-1, 1 << 40]);
        s.push_str(".text\nmain: halt\n");
        let prog = nwo_isa::assemble(&s).expect("directives must assemble");
        assert_eq!(prog.data[0..3], [1, 2, 255]);
        assert_eq!(prog.symbol("w").unwrap() - prog.symbol("b").unwrap(), 3);
    }
}
