//! Deterministic pseudo-random generator for workload data.
//!
//! SplitMix64: tiny, fast, and fully reproducible across platforms, so
//! every benchmark's input — and therefore every simulation — is
//! bit-stable run to run.

/// A SplitMix64 generator.
///
/// # Example
///
/// ```
/// use nwo_workloads::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(4);
        for _ in 0..1000 {
            let v = r.range(-50, 50);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn output_is_reasonably_distributed() {
        let mut r = Rng::new(5);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} out of range");
        }
    }
}
