#![warn(missing_docs)]

//! Benchmark workloads for the `nwo` study: eight SPECint95-like and six
//! MediaBench-like kernels (Tables 2 and 3 of the paper), written in the
//! `nwo-isa` assembly language and generated with seeded synthetic
//! inputs.
//!
//! Every kernel implements the *actual algorithm class* of its namesake
//! (LZW for `compress`, DCT for `ijpeg`, ADPCM for `g721`, …), so
//! operand-width distributions emerge from real data flow rather than
//! hand-tuned histograms. Each kernel ships with a pure-Rust reference
//! implementation; the `outq` stream of the assembled program must match
//! it exactly, which is verified by unit tests (on the functional
//! emulator) and integration tests (on the cycle-level simulator).
//!
//! # Example
//!
//! ```
//! use nwo_workloads::{spec_suite, Suite};
//! use nwo_isa::Emulator;
//!
//! let suite = spec_suite(0); // scale 0: small, CI-sized inputs
//! assert_eq!(suite.len(), 8);
//! let bench = &suite[0];
//! assert_eq!(bench.suite, Suite::SpecInt);
//! let mut emu = Emulator::new(&bench.program);
//! emu.run(100_000_000)?;
//! assert_eq!(emu.outq(), bench.expected.as_slice());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod data;
pub mod kernels;
mod rng;

pub use rng::Rng;

use nwo_isa::Program;

/// Which benchmark suite a kernel mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint95-like (Table 2 of the paper).
    SpecInt,
    /// MediaBench-like (Table 3 of the paper).
    Media,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::SpecInt => f.write_str("SPECint95"),
            Suite::Media => f.write_str("MediaBench"),
        }
    }
}

/// A ready-to-simulate benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (matches the paper's figures: `ijpeg`, `gsm-enc`, …).
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// The assembled program.
    pub program: Program,
    /// The expected `outq` stream from the reference implementation.
    pub expected: Vec<u64>,
}

impl Benchmark {
    fn new(name: &'static str, suite: Suite, program: Program, expected: Vec<u64>) -> Benchmark {
        Benchmark {
            name,
            suite,
            program,
            expected,
        }
    }
}

/// The eight SPECint95-like benchmarks at the given scale (each step of
/// `scale` roughly doubles the dynamic instruction count).
pub fn spec_suite(scale: u32) -> Vec<Benchmark> {
    use kernels::*;
    vec![
        Benchmark::new(
            "compress",
            Suite::SpecInt,
            compress::program(scale),
            compress::reference(scale),
        ),
        Benchmark::new(
            "gcc",
            Suite::SpecInt,
            gcc::program(scale),
            gcc::reference(scale),
        ),
        Benchmark::new(
            "go",
            Suite::SpecInt,
            go::program(scale),
            go::reference(scale),
        ),
        Benchmark::new(
            "ijpeg",
            Suite::SpecInt,
            ijpeg::program(scale),
            ijpeg::reference(scale),
        ),
        Benchmark::new(
            "m88ksim",
            Suite::SpecInt,
            m88ksim::program(scale),
            m88ksim::reference(scale),
        ),
        Benchmark::new(
            "perl",
            Suite::SpecInt,
            perl::program(scale),
            perl::reference(scale),
        ),
        Benchmark::new(
            "vortex",
            Suite::SpecInt,
            vortex::program(scale),
            vortex::reference(scale),
        ),
        Benchmark::new(
            "xlisp",
            Suite::SpecInt,
            xlisp::program(scale),
            xlisp::reference(scale),
        ),
    ]
}

/// The six MediaBench-like benchmarks at the given scale.
pub fn media_suite(scale: u32) -> Vec<Benchmark> {
    use kernels::*;
    vec![
        Benchmark::new(
            "gsm-enc",
            Suite::Media,
            gsm::encode_program(scale),
            gsm::encode_reference(scale),
        ),
        Benchmark::new(
            "gsm-dec",
            Suite::Media,
            gsm::decode_program(scale),
            gsm::decode_reference(scale),
        ),
        Benchmark::new(
            "g721-enc",
            Suite::Media,
            g721::encode_program(scale),
            g721::encode_reference(scale),
        ),
        Benchmark::new(
            "g721-dec",
            Suite::Media,
            g721::decode_program(scale),
            g721::decode_reference(scale),
        ),
        Benchmark::new(
            "mpeg2-enc",
            Suite::Media,
            mpeg2::encode_program(scale),
            mpeg2::encode_reference(scale),
        ),
        Benchmark::new(
            "mpeg2-dec",
            Suite::Media,
            mpeg2::decode_program(scale),
            mpeg2::decode_reference(scale),
        ),
    ]
}

/// All fourteen benchmarks.
pub fn full_suite(scale: u32) -> Vec<Benchmark> {
    let mut all = spec_suite(scale);
    all.extend(media_suite(scale));
    all
}

/// The per-benchmark scale that yields roughly half a million dynamic
/// instructions — the calibration used by the experiment harness so
/// every kernel contributes comparably (the paper simulates equal
/// 100M-instruction windows for the same reason).
pub fn experiment_scale(name: &str) -> u32 {
    match name {
        "compress" => 5,
        "gcc" => 5,
        "go" => 4,
        "ijpeg" => 2,
        "m88ksim" => 2,
        "perl" => 6,
        "vortex" => 4,
        "xlisp" => 5,
        "gsm-enc" => 1,
        "gsm-dec" => 6,
        "g721-enc" => 2,
        "g721-dec" => 3,
        "mpeg2-enc" => 0,
        "mpeg2-dec" => 2,
        _ => 0,
    }
}

/// Builds a single benchmark by name at the given scale.
pub fn benchmark(name: &str, scale: u32) -> Option<Benchmark> {
    use kernels::*;
    let b = match name {
        "compress" => Benchmark::new(
            "compress",
            Suite::SpecInt,
            compress::program(scale),
            compress::reference(scale),
        ),
        "gcc" => Benchmark::new(
            "gcc",
            Suite::SpecInt,
            gcc::program(scale),
            gcc::reference(scale),
        ),
        "go" => Benchmark::new(
            "go",
            Suite::SpecInt,
            go::program(scale),
            go::reference(scale),
        ),
        "ijpeg" => Benchmark::new(
            "ijpeg",
            Suite::SpecInt,
            ijpeg::program(scale),
            ijpeg::reference(scale),
        ),
        "m88ksim" => Benchmark::new(
            "m88ksim",
            Suite::SpecInt,
            m88ksim::program(scale),
            m88ksim::reference(scale),
        ),
        "perl" => Benchmark::new(
            "perl",
            Suite::SpecInt,
            perl::program(scale),
            perl::reference(scale),
        ),
        "vortex" => Benchmark::new(
            "vortex",
            Suite::SpecInt,
            vortex::program(scale),
            vortex::reference(scale),
        ),
        "xlisp" => Benchmark::new(
            "xlisp",
            Suite::SpecInt,
            xlisp::program(scale),
            xlisp::reference(scale),
        ),
        "gsm-enc" => Benchmark::new(
            "gsm-enc",
            Suite::Media,
            gsm::encode_program(scale),
            gsm::encode_reference(scale),
        ),
        "gsm-dec" => Benchmark::new(
            "gsm-dec",
            Suite::Media,
            gsm::decode_program(scale),
            gsm::decode_reference(scale),
        ),
        "g721-enc" => Benchmark::new(
            "g721-enc",
            Suite::Media,
            g721::encode_program(scale),
            g721::encode_reference(scale),
        ),
        "g721-dec" => Benchmark::new(
            "g721-dec",
            Suite::Media,
            g721::decode_program(scale),
            g721::decode_reference(scale),
        ),
        "mpeg2-enc" => Benchmark::new(
            "mpeg2-enc",
            Suite::Media,
            mpeg2::encode_program(scale),
            mpeg2::encode_reference(scale),
        ),
        "mpeg2-dec" => Benchmark::new(
            "mpeg2-dec",
            Suite::Media,
            mpeg2::decode_program(scale),
            mpeg2::decode_reference(scale),
        ),
        _ => return None,
    };
    Some(b)
}

/// The fourteen benchmark names in canonical (suite, alphabetical) order.
pub const BENCHMARK_NAMES: [&str; 14] = [
    "compress",
    "gcc",
    "go",
    "ijpeg",
    "m88ksim",
    "perl",
    "vortex",
    "xlisp",
    "gsm-enc",
    "gsm-dec",
    "g721-enc",
    "g721-dec",
    "mpeg2-enc",
    "mpeg2-dec",
];

/// All fourteen benchmarks at their calibrated experiment scales, plus
/// `bump` extra doublings (for longer runs).
pub fn experiment_suite(bump: u32) -> Vec<Benchmark> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| benchmark(name, experiment_scale(name) + bump).expect("known benchmark name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shapes() {
        let spec = spec_suite(0);
        let media = media_suite(0);
        assert_eq!(spec.len(), 8);
        assert_eq!(media.len(), 6);
        assert_eq!(full_suite(0).len(), 14);
        assert!(spec.iter().all(|b| b.suite == Suite::SpecInt));
        assert!(media.iter().all(|b| b.suite == Suite::Media));
    }

    #[test]
    fn names_are_unique() {
        let all = full_suite(0);
        let names: std::collections::HashSet<_> = all.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn all_programs_nonempty_with_expectations() {
        for b in full_suite(0) {
            assert!(!b.program.is_empty(), "{} has no code", b.name);
            assert!(!b.expected.is_empty(), "{} has no expected output", b.name);
        }
    }
}
