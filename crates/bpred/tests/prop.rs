//! Property-based tests for the branch-prediction structures.

use nwo_bpred::{Btb, BtbConfig, DirKind, DirPredictor, Ras, SatCounter};
use proptest::prelude::*;

proptest! {
    /// Saturating counters stay within range and converge on a constant
    /// stream.
    #[test]
    fn counters_saturate_and_converge(
        bits in 1u32..=8,
        flips in prop::collection::vec(any::<bool>(), 0..64),
        target in any::<bool>(),
    ) {
        let mut c = SatCounter::new(bits);
        for &t in &flips {
            c.train(t);
            let max = if bits == 8 { u8::MAX } else { (1 << bits) - 1 };
            prop_assert!(c.value() <= max);
        }
        // Enough consistent training always converges.
        for _ in 0..(1 << bits) {
            c.train(target);
        }
        prop_assert_eq!(c.taken(), target);
    }

    /// Every table-based predictor learns a fully-biased branch.
    #[test]
    fn predictors_learn_constant_branches(
        pc in (0u64..1 << 20).prop_map(|p| p * 4),
        taken in any::<bool>(),
    ) {
        for kind in [
            DirKind::Bimodal { entries: 1024 },
            DirKind::GShare { entries: 2048, history_bits: 10 },
            DirKind::Local { l1_entries: 256, history_bits: 8, counter_bits: 3 },
            DirKind::Combining,
        ] {
            let mut p = DirPredictor::new(kind);
            for _ in 0..64 {
                p.update(pc, taken);
            }
            prop_assert_eq!(p.predict(pc), taken, "{:?}", kind);
        }
    }

    /// BTB: the most recent update for a PC is returned (within capacity).
    #[test]
    fn btb_returns_latest_target(
        updates in prop::collection::vec(((0u64..64).prop_map(|p| 0x1000 + p * 4), any::<u64>()), 1..50),
    ) {
        // Large enough that 64 distinct PCs never evict.
        let mut btb = Btb::new(BtbConfig { entries: 256, assoc: 4 });
        let mut model = std::collections::HashMap::new();
        for &(pc, target) in &updates {
            btb.update(pc, target);
            model.insert(pc, target);
        }
        for (&pc, &target) in &model {
            prop_assert_eq!(btb.lookup(pc), Some(target));
        }
    }

    /// RAS: balanced call/return sequences within capacity behave as a
    /// perfect stack.
    #[test]
    fn ras_is_a_stack_within_capacity(
        depths in prop::collection::vec(1usize..8, 1..10),
    ) {
        let mut ras = Ras::new(64);
        for (round, &depth) in depths.iter().enumerate() {
            let base = (round as u64 + 1) << 16;
            for i in 0..depth {
                ras.push(base + i as u64 * 4);
            }
            for i in (0..depth).rev() {
                prop_assert_eq!(ras.pop(), Some(base + i as u64 * 4));
            }
        }
    }

    /// RAS checkpoint/restore undoes one push or one pop exactly.
    #[test]
    fn ras_checkpoint_roundtrip(
        seed in prop::collection::vec(1u64..1 << 30, 1..16),
        wrong_push in any::<bool>(),
    ) {
        let mut ras = Ras::new(32);
        for &v in &seed {
            ras.push(v);
        }
        let cp = ras.checkpoint();
        if wrong_push {
            ras.push(0xdead_beef);
        } else {
            ras.pop();
        }
        ras.restore(cp);
        // The top of the stack must be the last seeded value again.
        prop_assert_eq!(ras.pop(), seed.last().copied());
    }
}
