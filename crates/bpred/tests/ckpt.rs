//! Checkpoint round-trip properties for every predictor structure: a
//! trained predictor restored into a fresh receiver predicts identically,
//! re-saving is byte-identical, and shape mismatches are typed errors.

use nwo_bpred::{
    Btb, BtbConfig, ControlInfo, DirKind, DirPredictor, Predictor, PredictorConfig, Ras,
};
use nwo_ckpt::{Checkpointable, CkptError, SectionReader, SectionWriter};
use proptest::prelude::*;

fn save_bytes(state: &dyn Checkpointable) -> Vec<u8> {
    let mut w = SectionWriter::new();
    state.save(&mut w);
    w.into_bytes()
}

fn restore_from(receiver: &mut dyn Checkpointable, payload: &[u8]) -> Result<(), CkptError> {
    let mut r = SectionReader::new(payload.to_vec());
    receiver.restore(&mut r)?;
    r.finish("test payload")
}

fn cond_branch(pc: u64) -> ControlInfo {
    ControlInfo {
        is_cond: true,
        is_call: false,
        is_return: false,
        is_indirect: false,
        direct_target: Some(pc.wrapping_add(64)),
        return_addr: pc.wrapping_add(4),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every direction-predictor kind round-trips: the restored copy
    /// agrees with the original on future predictions.
    #[test]
    fn dir_predictors_round_trip(
        history in prop::collection::vec(((0u64..64).prop_map(|p| p * 4), any::<bool>()), 1..128),
        probes in prop::collection::vec((0u64..64).prop_map(|p| p * 4), 1..32),
    ) {
        for kind in [
            DirKind::Bimodal { entries: 256 },
            DirKind::GShare { entries: 512, history_bits: 8 },
            DirKind::Local { l1_entries: 64, history_bits: 6, counter_bits: 3 },
            DirKind::Combining,
        ] {
            let mut p = DirPredictor::new(kind);
            for &(pc, taken) in &history {
                p.update(pc, taken);
            }
            let payload = save_bytes(&p);
            let mut restored = DirPredictor::new(kind);
            restore_from(&mut restored, &payload).expect("restores");
            prop_assert_eq!(save_bytes(&restored), payload, "{:?} re-save", kind);
            for &pc in &probes {
                prop_assert_eq!(restored.predict(pc), p.predict(pc), "{:?} at {pc:#x}", kind);
            }
        }
    }

    /// The BTB round-trips: same future lookups, byte-identical re-save.
    #[test]
    fn btb_round_trips(
        updates in prop::collection::vec(((0u64..256).prop_map(|p| 0x1000 + p * 4), any::<u64>()), 1..64),
    ) {
        let config = BtbConfig { entries: 128, assoc: 2 };
        let mut btb = Btb::new(config);
        for &(pc, target) in &updates {
            btb.update(pc, target);
        }
        let payload = save_bytes(&btb);
        let mut restored = Btb::new(config);
        restore_from(&mut restored, &payload).expect("restores");
        prop_assert_eq!(save_bytes(&restored), payload.clone());
        for &(pc, _) in &updates {
            prop_assert_eq!(restored.lookup(pc), btb.lookup(pc));
        }
    }

    /// The RAS round-trips mid-stream: pops after restore match pops on
    /// the original, including wrap-around overflows.
    #[test]
    fn ras_round_trips(
        pushes in prop::collection::vec(any::<u64>(), 0..40),
        pops in 0usize..8,
    ) {
        let mut ras = Ras::new(16);
        for &a in &pushes {
            ras.push(a);
        }
        for _ in 0..pops {
            ras.pop();
        }
        let payload = save_bytes(&ras);
        let mut restored = Ras::new(16);
        restore_from(&mut restored, &payload).expect("restores");
        prop_assert_eq!(save_bytes(&restored), payload.clone());
        for _ in 0..20 {
            prop_assert_eq!(restored.pop(), ras.pop());
        }
    }

    /// The composed predictor (direction + BTB + RAS + stats)
    /// round-trips through one payload and keeps predicting identically.
    #[test]
    fn full_predictor_round_trips(
        branches in prop::collection::vec(
            ((0u64..128).prop_map(|p| 0x2000 + p * 4), any::<bool>()),
            1..96,
        ),
    ) {
        let config = PredictorConfig::default();
        let mut p = Predictor::new(config);
        for &(pc, taken) in &branches {
            let info = cond_branch(pc);
            let _ = p.predict(pc, &info);
            p.update(pc, &info, taken, if taken { pc + 64 } else { pc + 4 }, None);
        }
        let payload = save_bytes(&p);
        let mut restored = Predictor::new(config);
        restore_from(&mut restored, &payload).expect("restores");
        prop_assert_eq!(restored.stats(), p.stats());
        prop_assert_eq!(save_bytes(&restored), payload.clone());
        for &(pc, _) in &branches {
            let info = cond_branch(pc);
            prop_assert_eq!(restored.predict(pc, &info), p.predict(pc, &info));
        }
    }

    /// Truncating a full-predictor payload anywhere is an error, never a
    /// panic or a partial restore that passes `finish`.
    #[test]
    fn truncated_predictor_payload_is_rejected(cut_seed in any::<u64>()) {
        let mut p = Predictor::new(PredictorConfig::default());
        let info = cond_branch(0x2000);
        let _ = p.predict(0x2000, &info);
        p.update(0x2000, &info, true, 0x2040, None);
        let payload = save_bytes(&p);
        let cut = (cut_seed % payload.len() as u64) as usize;
        let mut receiver = Predictor::new(PredictorConfig::default());
        prop_assert!(restore_from(&mut receiver, &payload[..cut]).is_err());
    }
}

#[test]
fn dir_kind_mismatch_is_typed() {
    let trained = DirPredictor::new(DirKind::Bimodal { entries: 256 });
    let payload = save_bytes(&trained);
    let mut receiver = DirPredictor::new(DirKind::Combining);
    match restore_from(&mut receiver, &payload) {
        Err(CkptError::Mismatch { .. }) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

#[test]
fn btb_geometry_mismatch_is_typed() {
    let btb = Btb::new(BtbConfig {
        entries: 128,
        assoc: 2,
    });
    let payload = save_bytes(&btb);
    let mut receiver = Btb::new(BtbConfig {
        entries: 64,
        assoc: 2,
    });
    match restore_from(&mut receiver, &payload) {
        Err(CkptError::Mismatch { .. }) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
}
