//! Branch target buffer (Table 1: 2048 entries, 2-way set associative).
//!
//! The BTB supplies predicted targets for register-indirect jumps, whose
//! targets are unknown until execute. Direct branches compute their
//! targets from the instruction itself.

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries. Must be a multiple of `assoc` and a power of two.
    pub entries: usize,
    /// Ways per set.
    pub assoc: usize,
}

impl Default for BtbConfig {
    /// Table 1: 2048 entries, 2-way.
    fn default() -> Self {
        BtbConfig {
            entries: 2048,
            assoc: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: u64,
    lru: u64,
}

/// A set-associative branch target buffer with LRU replacement.
///
/// # Example
///
/// ```
/// use nwo_bpred::{Btb, BtbConfig};
///
/// let mut btb = Btb::new(BtbConfig::default());
/// assert_eq!(btb.lookup(0x1000), None);
/// btb.update(0x1000, 0x2000);
/// assert_eq!(btb.lookup(0x1000), Some(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    tick: u64,
}

impl Btb {
    /// Builds a BTB for `config`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry.
    pub fn new(config: BtbConfig) -> Btb {
        assert!(config.assoc >= 1, "associativity must be at least 1");
        assert!(
            config.entries.is_multiple_of(config.assoc),
            "entries must be a multiple of associativity"
        );
        let num_sets = config.entries / config.assoc;
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Btb {
            sets: vec![vec![BtbEntry::default(); config.assoc]; num_sets],
            tick: 0,
        }
    }

    fn set_and_tag(&self, pc: u64) -> (usize, u64) {
        let word = pc >> 2;
        let set = (word as usize) & (self.sets.len() - 1);
        let tag = word >> self.sets.len().trailing_zeros();
        (set, tag)
    }

    /// The predicted target for the control instruction at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(pc);
        let entry = self.sets[set]
            .iter_mut()
            .find(|e| e.valid && e.tag == tag)?;
        entry.lru = tick;
        Some(entry.target)
    }

    /// Installs or refreshes the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(pc);
        let set = &mut self.sets[set];
        if let Some(entry) = set.iter_mut().find(|e| e.valid && e.tag == tag) {
            entry.target = target;
            entry.lru = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("assoc >= 1");
        *victim = BtbEntry {
            valid: true,
            tag,
            target,
            lru: tick,
        };
    }
}

impl nwo_ckpt::Checkpointable for Btb {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_u64(self.sets.len() as u64);
        w.put_u64(self.sets.first().map_or(0, |s| s.len()) as u64);
        w.put_u64(self.tick);
        for set in &self.sets {
            for e in set {
                w.put_bool(e.valid);
                w.put_u64(e.tag);
                w.put_u64(e.target);
                w.put_u64(e.lru);
            }
        }
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        let sets = r.take_u64("btb set count")?;
        if sets != self.sets.len() as u64 {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "btb set count",
                found: sets,
                expected: self.sets.len() as u64,
            });
        }
        let assoc = r.take_u64("btb associativity")?;
        let expected_assoc = self.sets.first().map_or(0, |s| s.len()) as u64;
        if assoc != expected_assoc {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "btb associativity",
                found: assoc,
                expected: expected_assoc,
            });
        }
        self.tick = r.take_u64("btb tick")?;
        for set in &mut self.sets {
            for e in set {
                e.valid = r.take_bool("btb entry valid")?;
                e.tag = r.take_u64("btb entry tag")?;
                e.target = r.take_u64("btb entry target")?;
                e.lru = r.take_u64("btb entry lru")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Btb {
        Btb::new(BtbConfig {
            entries: 4,
            assoc: 2,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut btb = tiny();
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0xbeef);
        assert_eq!(btb.lookup(0x1000), Some(0xbeef));
    }

    #[test]
    fn update_refreshes_target() {
        let mut btb = tiny();
        btb.update(0x1000, 0x1);
        btb.update(0x1000, 0x2);
        assert_eq!(btb.lookup(0x1000), Some(0x2));
    }

    #[test]
    fn lru_within_set() {
        let mut btb = tiny(); // 2 sets x 2 ways
                              // PCs mapping to set 0: word addresses with even low bit.
        btb.update(0x1000, 1); // set 0
        btb.update(0x1008, 2); // set 0 (word 0x402, low bit 0)
        btb.lookup(0x1000); // refresh first
        btb.update(0x1010, 3); // evicts 0x1008
        assert_eq!(btb.lookup(0x1000), Some(1));
        assert_eq!(btb.lookup(0x1008), None);
        assert_eq!(btb.lookup(0x1010), Some(3));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut btb = tiny();
        btb.update(0x1000, 1); // set 0
        btb.update(0x1004, 2); // set 1
        assert_eq!(btb.lookup(0x1000), Some(1));
        assert_eq!(btb.lookup(0x1004), Some(2));
    }

    #[test]
    fn default_is_table1() {
        let cfg = BtbConfig::default();
        assert_eq!((cfg.entries, cfg.assoc), (2048, 2));
        Btb::new(cfg);
    }
}
