#![warn(missing_docs)]

//! Branch prediction for the `nwo` simulator: direction predictors
//! (including the Table 1 combining predictor), a 2-way BTB, and a
//! checkpointable return-address stack.
//!
//! The [`Predictor`] facade bundles the three structures behind the
//! interface the fetch stage needs: one [`Predictor::predict`] call per
//! fetched control instruction, one [`Predictor::update`] per committed
//! one, and RAS checkpoint/restore around speculation.
//!
//! # Example
//!
//! ```
//! use nwo_bpred::{ControlInfo, Predictor, PredictorConfig};
//!
//! let mut p = Predictor::new(PredictorConfig::default());
//! let info = ControlInfo {
//!     is_cond: true,
//!     is_call: false,
//!     is_return: false,
//!     is_indirect: false,
//!     direct_target: Some(0x2000),
//!     return_addr: 0x1004,
//! };
//! let pred = p.predict(0x1000, &info);
//! // A cold 2-bit counter predicts not-taken: fall through.
//! assert!(!pred.taken);
//! ```

mod btb;
mod counter;
mod dir;
mod ras;

pub use btb::{Btb, BtbConfig};
pub use counter::SatCounter;
pub use dir::{DirKind, DirLookup, DirPredictor};
pub use ras::{Ras, RasCheckpoint};

/// Static properties of a fetched control instruction, extracted at
/// decode, that the predictor needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlInfo {
    /// Conditional branch (needs a direction prediction).
    pub is_cond: bool,
    /// Call (pushes the RAS).
    pub is_call: bool,
    /// Return (pops the RAS).
    pub is_return: bool,
    /// Register-indirect (needs a BTB target).
    pub is_indirect: bool,
    /// PC-relative target, when computable from the instruction.
    pub direct_target: Option<u64>,
    /// The address of the next sequential instruction.
    pub return_addr: u64,
}

/// The outcome of a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always true for unconditional transfers).
    pub taken: bool,
    /// Predicted target when taken; `None` means the predictor has no
    /// target (BTB miss on an indirect jump) and fetch must stall or
    /// fall through until the branch resolves.
    pub target: Option<u64>,
    /// Direction-lookup state for conditional branches; hand it back to
    /// [`Predictor::update`] at commit and [`Predictor::repair`] on
    /// misprediction.
    pub lookup: Option<DirLookup>,
}

/// Full predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Direction-predictor kind.
    pub dir: DirKind,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// Return-address-stack entries.
    pub ras_entries: usize,
    /// Update history registers speculatively at predict time (with
    /// checkpoint repair on misprediction) instead of at commit. Keeps
    /// global history fresh across the many in-flight branches of a deep
    /// window — how the Alpha 21264 and SimpleScalar's `spec_update`
    /// mode behave. Approximation: history is repaired from the
    /// checkpoints of *conditional* branches only; a recovery triggered
    /// by an indirect-jump target mispredict leaves the shifts of its
    /// squashed younger conditionals in place (real hardware
    /// checkpoints at every branch).
    pub speculative_history: bool,
}

impl Default for PredictorConfig {
    /// The Table 1 configuration: combining predictor, 2048-entry 2-way
    /// BTB, 32-entry RAS, commit-time history (SimpleScalar's default).
    fn default() -> Self {
        PredictorConfig {
            dir: DirKind::table1(),
            btb: BtbConfig::default(),
            ras_entries: 32,
            speculative_history: false,
        }
    }
}

/// Counters published by the predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Direction lookups performed (conditional branches fetched).
    pub dir_lookups: u64,
    /// BTB lookups performed (indirect jumps fetched).
    pub btb_lookups: u64,
    /// BTB lookups that found a target.
    pub btb_hits: u64,
    /// RAS pops that found an address.
    pub ras_pops: u64,
    /// Committed branches used for training.
    pub updates: u64,
}

impl nwo_obs::MetricSource for PredictorStats {
    fn collect(&self, registry: &mut nwo_obs::Registry) {
        registry.counter("dir_lookups", self.dir_lookups);
        registry.counter("btb_lookups", self.btb_lookups);
        registry.counter("btb_hits", self.btb_hits);
        registry.counter("ras_pops", self.ras_pops);
        registry.counter("updates", self.updates);
    }
}

/// Direction predictor + BTB + RAS behind one fetch-stage interface.
#[derive(Debug, Clone)]
pub struct Predictor {
    dir: DirPredictor,
    btb: Btb,
    ras: Ras,
    stats: PredictorStats,
    speculative_history: bool,
}

impl Predictor {
    /// Builds the predictor for `config`.
    pub fn new(config: PredictorConfig) -> Predictor {
        Predictor {
            dir: DirPredictor::new(config.dir),
            btb: Btb::new(config.btb),
            ras: Ras::new(config.ras_entries),
            stats: PredictorStats::default(),
            speculative_history: config.speculative_history,
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Predicts direction and target for the control instruction at `pc`,
    /// speculatively updating the RAS (push on call, pop on return).
    pub fn predict(&mut self, pc: u64, info: &ControlInfo) -> Prediction {
        if info.is_call {
            self.ras.push(info.return_addr);
        }
        if info.is_return {
            let target = self.ras.pop();
            if target.is_some() {
                self.stats.ras_pops += 1;
            }
            return Prediction {
                taken: true,
                target,
                lookup: None,
            };
        }
        if info.is_indirect {
            self.stats.btb_lookups += 1;
            let target = self.btb.lookup(pc);
            if target.is_some() {
                self.stats.btb_hits += 1;
            }
            return Prediction {
                taken: true,
                target,
                lookup: None,
            };
        }
        if info.is_cond {
            self.stats.dir_lookups += 1;
            let lookup = self.dir.lookup(pc, self.speculative_history);
            return Prediction {
                taken: lookup.taken,
                target: if lookup.taken {
                    info.direct_target
                } else {
                    None
                },
                lookup: Some(lookup),
            };
        }
        // Unconditional direct (br/bsr).
        Prediction {
            taken: true,
            target: info.direct_target,
            lookup: None,
        }
    }

    /// Trains with a committed control instruction. `lookup` is the
    /// state [`Predictor::predict`] returned for this branch (when it
    /// was fetched through the predictor; warm-up paths pass `None` and
    /// fall back to commit-time indexing).
    pub fn update(
        &mut self,
        pc: u64,
        info: &ControlInfo,
        taken: bool,
        target: u64,
        lookup: Option<&DirLookup>,
    ) {
        self.stats.updates += 1;
        if info.is_cond {
            match lookup {
                Some(lu) => self.dir.commit(lu, taken, self.speculative_history),
                None => self.dir.update(pc, taken),
            }
        }
        if info.is_indirect && !info.is_return {
            self.btb.update(pc, target);
        }
    }

    /// Repairs the speculative history after `lookup`'s branch resolved
    /// mispredicted (no-op when speculative history is off).
    pub fn repair(&mut self, lookup: &DirLookup, actual: bool) {
        if self.speculative_history {
            self.dir.repair(lookup, actual);
        }
    }

    /// Takes a RAS checkpoint (at every predicted branch).
    pub fn ras_checkpoint(&self) -> RasCheckpoint {
        self.ras.checkpoint()
    }

    /// Restores the RAS after a misprediction.
    pub fn ras_restore(&mut self, cp: RasCheckpoint) {
        self.ras.restore(cp);
    }

    /// Flips the low bit of one direction counter chosen from `entropy`
    /// (deterministic fault injection; see
    /// [`DirPredictor::flip_state_bit`]). Returns false when the
    /// predictor has no mutable direction state.
    pub fn flip_state_bit(&mut self, entropy: u64) -> bool {
        self.dir.flip_state_bit(entropy)
    }
}

impl nwo_ckpt::Checkpointable for PredictorStats {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_u64(self.dir_lookups);
        w.put_u64(self.btb_lookups);
        w.put_u64(self.btb_hits);
        w.put_u64(self.ras_pops);
        w.put_u64(self.updates);
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        self.dir_lookups = r.take_u64("predictor dir_lookups")?;
        self.btb_lookups = r.take_u64("predictor btb_lookups")?;
        self.btb_hits = r.take_u64("predictor btb_hits")?;
        self.ras_pops = r.take_u64("predictor ras_pops")?;
        self.updates = r.take_u64("predictor updates")?;
        Ok(())
    }
}

impl nwo_ckpt::Checkpointable for Predictor {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        use nwo_ckpt::Checkpointable as Ckpt;
        Ckpt::save(&self.dir, w);
        Ckpt::save(&self.btb, w);
        Ckpt::save(&self.ras, w);
        Ckpt::save(&self.stats, w);
        w.put_bool(self.speculative_history);
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        use nwo_ckpt::Checkpointable as Ckpt;
        Ckpt::restore(&mut self.dir, r)?;
        Ckpt::restore(&mut self.btb, r)?;
        Ckpt::restore(&mut self.ras, r)?;
        Ckpt::restore(&mut self.stats, r)?;
        let spec = r.take_bool("predictor speculative_history")?;
        if spec != self.speculative_history {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "predictor speculative_history",
                found: spec as u64,
                expected: self.speculative_history as u64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(target: u64) -> ControlInfo {
        ControlInfo {
            is_cond: true,
            is_call: false,
            is_return: false,
            is_indirect: false,
            direct_target: Some(target),
            return_addr: 0,
        }
    }

    #[test]
    fn conditional_uses_direction_predictor() {
        let mut p = Predictor::new(PredictorConfig::default());
        let info = cond(0x2000);
        // History-based components need the history register to saturate
        // before the consulted counter is a trained one.
        for _ in 0..64 {
            p.update(0x1000, &info, true, 0x2000, None);
        }
        let pred = p.predict(0x1000, &info);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(0x2000));
        assert_eq!(p.stats().dir_lookups, 1);
        assert_eq!(p.stats().updates, 64);
    }

    #[test]
    fn not_taken_prediction_has_no_target() {
        let mut p = Predictor::new(PredictorConfig::default());
        let info = cond(0x2000);
        for _ in 0..8 {
            p.update(0x1000, &info, false, 0, None);
        }
        let pred = p.predict(0x1000, &info);
        assert!(!pred.taken);
        assert_eq!(pred.target, None);
    }

    #[test]
    fn call_and_return_round_trip_through_ras() {
        let mut p = Predictor::new(PredictorConfig::default());
        let call = ControlInfo {
            is_cond: false,
            is_call: true,
            is_return: false,
            is_indirect: false,
            direct_target: Some(0x5000),
            return_addr: 0x1004,
        };
        let pred = p.predict(0x1000, &call);
        assert_eq!(pred.target, Some(0x5000));
        let ret = ControlInfo {
            is_cond: false,
            is_call: false,
            is_return: true,
            is_indirect: true,
            direct_target: None,
            return_addr: 0x5008,
        };
        let pred = p.predict(0x5004, &ret);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(0x1004));
        assert_eq!(p.stats().ras_pops, 1);
    }

    #[test]
    fn indirect_jump_uses_btb() {
        let mut p = Predictor::new(PredictorConfig::default());
        let jmp = ControlInfo {
            is_cond: false,
            is_call: false,
            is_return: false,
            is_indirect: true,
            direct_target: None,
            return_addr: 0x1004,
        };
        assert_eq!(p.predict(0x1000, &jmp).target, None);
        p.update(0x1000, &jmp, true, 0x7777_0000, None);
        assert_eq!(p.predict(0x1000, &jmp).target, Some(0x7777_0000));
        assert_eq!(p.stats().btb_hits, 1);
        assert_eq!(p.stats().btb_lookups, 2);
    }

    #[test]
    fn returns_do_not_pollute_btb() {
        let mut p = Predictor::new(PredictorConfig::default());
        let ret = ControlInfo {
            is_cond: false,
            is_call: false,
            is_return: true,
            is_indirect: true,
            direct_target: None,
            return_addr: 0,
        };
        p.update(0x1000, &ret, true, 0x9000, None);
        // A later jmp at the same pc should not see the return target.
        let jmp = ControlInfo {
            is_return: false,
            ..ret
        };
        assert_eq!(p.predict(0x1000, &jmp).target, None);
    }

    #[test]
    fn ras_checkpoint_repairs_wrong_path() {
        let mut p = Predictor::new(PredictorConfig::default());
        let call = ControlInfo {
            is_cond: false,
            is_call: true,
            is_return: false,
            is_indirect: false,
            direct_target: Some(0x5000),
            return_addr: 0x1004,
        };
        p.predict(0x1000, &call);
        let cp = p.ras_checkpoint();
        // Wrong path fetches another call.
        p.predict(
            0x3000,
            &ControlInfo {
                return_addr: 0x3004,
                ..call
            },
        );
        p.ras_restore(cp);
        let ret = ControlInfo {
            is_cond: false,
            is_call: false,
            is_return: true,
            is_indirect: true,
            direct_target: None,
            return_addr: 0,
        };
        assert_eq!(p.predict(0x5004, &ret).target, Some(0x1004));
    }

    #[test]
    fn speculative_history_learns_patterns_with_in_flight_branches() {
        // An alternating branch with several predictions in flight
        // before each commit: commit-time history goes stale, while
        // speculative history keeps learning the pattern.
        let accuracy = |speculative: bool| {
            let mut p = Predictor::new(PredictorConfig {
                speculative_history: speculative,
                ..PredictorConfig::default()
            });
            let info = cond(0x9000);
            let mut correct = 0u32;
            let mut outcome = false;
            let mut inflight: Vec<(Prediction, bool)> = Vec::new();
            for i in 0..4000 {
                outcome = !outcome;
                let pred = p.predict(0x9000, &info);
                if i >= 2000 && pred.taken == outcome {
                    correct += 1;
                }
                inflight.push((pred, outcome));
                // Commit with a 4-branch delay, like a real window.
                if inflight.len() > 4 {
                    let (pred, actual) = inflight.remove(0);
                    if pred.taken != actual {
                        if let Some(lu) = &pred.lookup {
                            p.repair(lu, actual);
                        }
                        // A real machine squashes everything younger.
                        for (q, _) in inflight.drain(..) {
                            let _ = q;
                        }
                    }
                    p.update(0x9000, &info, actual, 0, pred.lookup.as_ref());
                }
            }
            correct
        };
        let spec = accuracy(true);
        let commit = accuracy(false);
        assert!(
            spec > commit,
            "speculative history must beat stale commit-time history ({spec} vs {commit})"
        );
        assert!(
            spec > 1800,
            "pattern must be essentially learned ({spec}/2000)"
        );
    }

    #[test]
    fn unconditional_direct_branch() {
        let mut p = Predictor::new(PredictorConfig::default());
        let br = ControlInfo {
            is_cond: false,
            is_call: false,
            is_return: false,
            is_indirect: false,
            direct_target: Some(0x4000),
            return_addr: 0x1004,
        };
        let pred = p.predict(0x1000, &br);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(0x4000));
    }
}
