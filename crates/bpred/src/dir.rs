//! Direction predictors: static, bimodal, gshare, two-level local, and
//! the Table 1 combining predictor.
//!
//! All predictors are trained at commit time with the architected
//! history, matching SimpleScalar's `sim-outorder` (`bpred_update` runs
//! in `ruu_commit`). Wrong-path branches therefore never pollute tables.

use crate::counter::SatCounter;

/// Which direction predictor to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirKind {
    /// Always predict not taken.
    NotTaken,
    /// Always predict taken.
    Taken,
    /// PC-indexed 2-bit counters.
    Bimodal {
        /// Table entries (power of two).
        entries: usize,
    },
    /// Global history XOR PC indexing 2-bit counters.
    GShare {
        /// Table entries (power of two).
        entries: usize,
        /// Global history bits.
        history_bits: u32,
    },
    /// Per-branch history indexing a second-level counter table
    /// (Table 1: "1K 3-bit local predictor, 10-bit history").
    Local {
        /// First-level (history) table entries.
        l1_entries: usize,
        /// History bits per entry (also sizes the counter table).
        history_bits: u32,
        /// Second-level counter width in bits.
        counter_bits: u32,
    },
    /// The Table 1 combining predictor: a selector chooses between the
    /// local and global components per branch.
    Combining,
}

impl DirKind {
    /// The exact Table 1 configuration: 4K 2-bit selector with 12-bit
    /// history; 1K 3-bit local predictor with 10-bit history; 4K 2-bit
    /// global predictor with 12-bit history.
    pub fn table1() -> DirKind {
        DirKind::Combining
    }
}

#[derive(Debug, Clone)]
struct Bimodal {
    table: Vec<SatCounter>,
}

impl Bimodal {
    fn new(entries: usize, bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Bimodal {
            table: vec![SatCounter::new(bits); entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
    }
}

#[derive(Debug, Clone)]
struct GShare {
    table: Vec<SatCounter>,
    history: u64,
    history_mask: u64,
}

impl GShare {
    fn new(entries: usize, history_bits: u32, counter_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        GShare {
            table: vec![SatCounter::new(counter_bits); entries],
            history: 0,
            history_mask: (1 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & (self.table.len() - 1)
    }

    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
    }
}

#[derive(Debug, Clone)]
struct Local {
    histories: Vec<u64>,
    counters: Vec<SatCounter>,
    history_bits: u32,
}

impl Local {
    fn new(l1_entries: usize, history_bits: u32, counter_bits: u32) -> Self {
        assert!(
            l1_entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Local {
            histories: vec![0; l1_entries],
            counters: vec![SatCounter::new(counter_bits); 1 << history_bits],
            history_bits,
        }
    }

    fn l1_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.histories.len() - 1)
    }

    fn predict(&self, pc: u64) -> bool {
        let hist = self.histories[self.l1_index(pc)];
        self.counters[hist as usize].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let l1 = self.l1_index(pc);
        let hist = self.histories[l1];
        self.counters[hist as usize].train(taken);
        self.histories[l1] = ((hist << 1) | taken as u64) & ((1 << self.history_bits) - 1);
    }
}

/// The Table 1 combining (tournament) predictor.
#[derive(Debug, Clone)]
struct Combining {
    selector: Vec<SatCounter>,
    local: Local,
    global: GShare,
}

impl Combining {
    fn new() -> Self {
        Combining {
            // 4K 2-bit selector, indexed by 12 bits of global history
            // hashed with the PC.
            selector: vec![SatCounter::new(2); 4096],
            // 1K-entry, 10-bit-history, 3-bit local component.
            local: Local::new(1024, 10, 3),
            // 4K 2-bit global component over 12 bits of history.
            global: GShare::new(4096, 12, 2),
        }
    }

    fn selector_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.global.history) as usize) & (self.selector.len() - 1)
    }

    fn predict(&self, pc: u64) -> bool {
        // Selector counter high half -> trust the global component.
        if self.selector[self.selector_index(pc)].taken() {
            self.global.predict(pc)
        } else {
            self.local.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let local_pred = self.local.predict(pc);
        let global_pred = self.global.predict(pc);
        let sel_idx = self.selector_index(pc);
        // Train the selector toward whichever component was right, but
        // only when they disagree.
        if local_pred != global_pred {
            self.selector[sel_idx].train(global_pred == taken);
        }
        self.local.update(pc, taken);
        self.global.update(pc, taken);
    }
}

/// Per-prediction state captured at lookup time: the table indices the
/// prediction used (so commit-time training hits the same counters even
/// after speculative history updates) and the pre-lookup history (so a
/// misprediction can repair the history registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirLookup {
    /// The prediction made.
    pub taken: bool,
    payload: LookupPayload,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LookupPayload {
    Static,
    Bimodal {
        idx: usize,
    },
    GShare {
        idx: usize,
        ghist_before: u64,
    },
    Local {
        l1: usize,
        hist_before: u64,
    },
    Combining {
        sel_idx: usize,
        global_idx: usize,
        local_l1: usize,
        local_hist_before: u64,
        ghist_before: u64,
        local_pred: bool,
        global_pred: bool,
    },
}

#[derive(Debug, Clone)]
enum Impl {
    Static(bool),
    Bimodal(Bimodal),
    GShare(GShare),
    Local(Local),
    Combining(Combining),
}

/// A trainable direction predictor.
///
/// # Example
///
/// ```
/// use nwo_bpred::{DirKind, DirPredictor};
///
/// let mut p = DirPredictor::new(DirKind::table1());
/// // Train until the history registers saturate with the taken pattern.
/// for _ in 0..64 {
///     p.update(0x1000, true);
/// }
/// assert!(p.predict(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct DirPredictor {
    kind: DirKind,
    imp: Impl,
}

impl DirPredictor {
    /// Builds a predictor of the given kind.
    pub fn new(kind: DirKind) -> DirPredictor {
        let imp = match kind {
            DirKind::NotTaken => Impl::Static(false),
            DirKind::Taken => Impl::Static(true),
            DirKind::Bimodal { entries } => Impl::Bimodal(Bimodal::new(entries, 2)),
            DirKind::GShare {
                entries,
                history_bits,
            } => Impl::GShare(GShare::new(entries, history_bits, 2)),
            DirKind::Local {
                l1_entries,
                history_bits,
                counter_bits,
            } => Impl::Local(Local::new(l1_entries, history_bits, counter_bits)),
            DirKind::Combining => Impl::Combining(Combining::new()),
        };
        DirPredictor { kind, imp }
    }

    /// The configuration this predictor was built with.
    pub fn kind(&self) -> DirKind {
        self.kind
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        match &self.imp {
            Impl::Static(taken) => *taken,
            Impl::Bimodal(b) => b.predict(pc),
            Impl::GShare(g) => g.predict(pc),
            Impl::Local(l) => l.predict(pc),
            Impl::Combining(c) => c.predict(pc),
        }
    }

    /// Trains with a committed branch outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        match &mut self.imp {
            Impl::Static(_) => {}
            Impl::Bimodal(b) => b.update(pc, taken),
            Impl::GShare(g) => g.update(pc, taken),
            Impl::Local(l) => l.update(pc, taken),
            Impl::Combining(c) => c.update(pc, taken),
        }
    }

    /// Predicts and, when `speculative_history` is set, immediately
    /// shifts the history registers with the *predicted* outcome — the
    /// way deep pipelines keep history fresh across the many in-flight
    /// branches between fetch and commit. The returned [`DirLookup`]
    /// captures the table indices used (for [`DirPredictor::commit`])
    /// and the pre-lookup history (for [`DirPredictor::repair`]).
    pub fn lookup(&mut self, pc: u64, speculative_history: bool) -> DirLookup {
        match &mut self.imp {
            Impl::Static(taken) => DirLookup {
                taken: *taken,
                payload: LookupPayload::Static,
            },
            Impl::Bimodal(b) => {
                let idx = b.index(pc);
                DirLookup {
                    taken: b.table[idx].taken(),
                    payload: LookupPayload::Bimodal { idx },
                }
            }
            Impl::GShare(g) => {
                let idx = g.index(pc);
                let taken = g.table[idx].taken();
                let ghist_before = g.history;
                if speculative_history {
                    g.history = ((g.history << 1) | taken as u64) & g.history_mask;
                }
                DirLookup {
                    taken,
                    payload: LookupPayload::GShare { idx, ghist_before },
                }
            }
            Impl::Local(l) => {
                let l1 = l.l1_index(pc);
                let hist_before = l.histories[l1];
                let taken = l.counters[hist_before as usize].taken();
                if speculative_history {
                    l.histories[l1] =
                        ((hist_before << 1) | taken as u64) & ((1 << l.history_bits) - 1);
                }
                DirLookup {
                    taken,
                    payload: LookupPayload::Local { l1, hist_before },
                }
            }
            Impl::Combining(c) => {
                let sel_idx = c.selector_index(pc);
                let global_idx = c.global.index(pc);
                let local_l1 = c.local.l1_index(pc);
                let local_hist_before = c.local.histories[local_l1];
                let ghist_before = c.global.history;
                let local_pred = c.local.counters[local_hist_before as usize].taken();
                let global_pred = c.global.table[global_idx].taken();
                let taken = if c.selector[sel_idx].taken() {
                    global_pred
                } else {
                    local_pred
                };
                if speculative_history {
                    c.global.history =
                        ((c.global.history << 1) | taken as u64) & c.global.history_mask;
                    c.local.histories[local_l1] = ((local_hist_before << 1) | taken as u64)
                        & ((1 << c.local.history_bits) - 1);
                }
                DirLookup {
                    taken,
                    payload: LookupPayload::Combining {
                        sel_idx,
                        global_idx,
                        local_l1,
                        local_hist_before,
                        ghist_before,
                        local_pred,
                        global_pred,
                    },
                }
            }
        }
    }

    /// Trains the counters a [`lookup`](DirPredictor::lookup) consulted,
    /// with the architected outcome. With speculative history the
    /// history registers are *not* shifted here (that happened at
    /// lookup, or at [`repair`](DirPredictor::repair)); without it, they
    /// are.
    pub fn commit(&mut self, lu: &DirLookup, taken: bool, speculative_history: bool) {
        match (&mut self.imp, lu.payload) {
            (Impl::Static(_), _) => {}
            (Impl::Bimodal(b), LookupPayload::Bimodal { idx }) => b.table[idx].train(taken),
            (Impl::GShare(g), LookupPayload::GShare { idx, .. }) => {
                g.table[idx].train(taken);
                if !speculative_history {
                    g.history = ((g.history << 1) | taken as u64) & g.history_mask;
                }
            }
            (Impl::Local(l), LookupPayload::Local { l1, hist_before }) => {
                l.counters[hist_before as usize].train(taken);
                if !speculative_history {
                    l.histories[l1] =
                        ((hist_before << 1) | taken as u64) & ((1 << l.history_bits) - 1);
                }
            }
            (
                Impl::Combining(c),
                LookupPayload::Combining {
                    sel_idx,
                    global_idx,
                    local_l1,
                    local_hist_before,
                    local_pred,
                    global_pred,
                    ..
                },
            ) => {
                if local_pred != global_pred {
                    c.selector[sel_idx].train(global_pred == taken);
                }
                c.global.table[global_idx].train(taken);
                c.local.counters[local_hist_before as usize].train(taken);
                if !speculative_history {
                    c.global.history =
                        ((c.global.history << 1) | taken as u64) & c.global.history_mask;
                    c.local.histories[local_l1] = ((local_hist_before << 1) | taken as u64)
                        & ((1 << c.local.history_bits) - 1);
                }
            }
            _ => debug_assert!(false, "lookup payload does not match predictor kind"),
        }
    }

    /// Repairs the speculative history after this lookup's branch turned
    /// out mispredicted: restores the pre-lookup history and shifts in
    /// the actual outcome. Younger speculative shifts are discarded
    /// wholesale, which is exactly what restoring the older snapshot
    /// achieves for the global history.
    pub fn repair(&mut self, lu: &DirLookup, actual: bool) {
        match (&mut self.imp, lu.payload) {
            (Impl::GShare(g), LookupPayload::GShare { ghist_before, .. }) => {
                g.history = ((ghist_before << 1) | actual as u64) & g.history_mask;
            }
            (Impl::Local(l), LookupPayload::Local { l1, hist_before }) => {
                l.histories[l1] =
                    ((hist_before << 1) | actual as u64) & ((1 << l.history_bits) - 1);
            }
            (
                Impl::Combining(c),
                LookupPayload::Combining {
                    local_l1,
                    local_hist_before,
                    ghist_before,
                    ..
                },
            ) => {
                c.global.history = ((ghist_before << 1) | actual as u64) & c.global.history_mask;
                c.local.histories[local_l1] =
                    ((local_hist_before << 1) | actual as u64) & ((1 << c.local.history_bits) - 1);
            }
            _ => {}
        }
    }

    /// Flips the low bit of one direction counter chosen from `entropy`
    /// — deterministic fault injection for robustness campaigns. The
    /// corruption is micro-architectural only: predictions may get
    /// worse, architected results cannot change. Returns false when the
    /// predictor has no mutable state (static taken/not-taken).
    pub fn flip_state_bit(&mut self, entropy: u64) -> bool {
        fn flip(table: &mut [SatCounter], entropy: u64) -> bool {
            if table.is_empty() {
                return false;
            }
            let idx = (entropy % table.len() as u64) as usize;
            let flipped = table[idx].value() ^ 1;
            table[idx].set_value(flipped);
            true
        }
        match &mut self.imp {
            Impl::Static(_) => false,
            Impl::Bimodal(b) => flip(&mut b.table, entropy),
            Impl::GShare(g) => flip(&mut g.table, entropy),
            Impl::Local(l) => flip(&mut l.counters, entropy),
            Impl::Combining(c) => match entropy % 3 {
                0 => flip(&mut c.selector, entropy >> 2),
                1 => flip(&mut c.local.counters, entropy >> 2),
                _ => flip(&mut c.global.table, entropy >> 2),
            },
        }
    }
}

fn save_counters(table: &[SatCounter], w: &mut nwo_ckpt::SectionWriter) {
    w.put_u64(table.len() as u64);
    for c in table {
        w.put_u8(c.value());
    }
}

fn restore_counters(
    table: &mut [SatCounter],
    r: &mut nwo_ckpt::SectionReader,
    what: &'static str,
) -> Result<(), nwo_ckpt::CkptError> {
    let len = r.take_u64(what)?;
    if len != table.len() as u64 {
        return Err(nwo_ckpt::CkptError::Mismatch {
            what,
            found: len,
            expected: table.len() as u64,
        });
    }
    for c in table.iter_mut() {
        c.set_value(r.take_u8("counter value")?);
    }
    Ok(())
}

impl GShare {
    fn save_state(&self, w: &mut nwo_ckpt::SectionWriter) {
        save_counters(&self.table, w);
        w.put_u64(self.history);
    }

    fn restore_state(
        &mut self,
        r: &mut nwo_ckpt::SectionReader,
    ) -> Result<(), nwo_ckpt::CkptError> {
        restore_counters(&mut self.table, r, "gshare table size")?;
        self.history = r.take_u64("gshare history")? & self.history_mask;
        Ok(())
    }
}

impl Local {
    fn save_state(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_u64(self.histories.len() as u64);
        for &h in &self.histories {
            w.put_u64(h);
        }
        save_counters(&self.counters, w);
    }

    fn restore_state(
        &mut self,
        r: &mut nwo_ckpt::SectionReader,
    ) -> Result<(), nwo_ckpt::CkptError> {
        let len = r.take_u64("local history table size")?;
        if len != self.histories.len() as u64 {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "local history table size",
                found: len,
                expected: self.histories.len() as u64,
            });
        }
        let mask = (1u64 << self.history_bits) - 1;
        for h in self.histories.iter_mut() {
            *h = r.take_u64("local history")? & mask;
        }
        restore_counters(&mut self.counters, r, "local counter table size")
    }
}

impl nwo_ckpt::Checkpointable for DirPredictor {
    /// Serializes the predictor tables behind a variant tag; restore
    /// requires the receiver to be configured with the same [`DirKind`]
    /// and geometry (checkpoints carry state, not configuration).
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        match &self.imp {
            Impl::Static(taken) => {
                w.put_u8(0);
                w.put_bool(*taken);
            }
            Impl::Bimodal(b) => {
                w.put_u8(1);
                save_counters(&b.table, w);
            }
            Impl::GShare(g) => {
                w.put_u8(2);
                g.save_state(w);
            }
            Impl::Local(l) => {
                w.put_u8(3);
                l.save_state(w);
            }
            Impl::Combining(c) => {
                w.put_u8(4);
                save_counters(&c.selector, w);
                c.local.save_state(w);
                c.global.save_state(w);
            }
        }
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        let tag = r.take_u8("direction predictor tag")?;
        let expected = match &self.imp {
            Impl::Static(_) => 0,
            Impl::Bimodal(_) => 1,
            Impl::GShare(_) => 2,
            Impl::Local(_) => 3,
            Impl::Combining(_) => 4,
        };
        if tag != expected {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "direction predictor kind",
                found: tag as u64,
                expected: expected as u64,
            });
        }
        match &mut self.imp {
            Impl::Static(taken) => {
                let saved = r.take_bool("static direction")?;
                if saved != *taken {
                    return Err(nwo_ckpt::CkptError::Mismatch {
                        what: "static predictor direction",
                        found: saved as u64,
                        expected: *taken as u64,
                    });
                }
            }
            Impl::Bimodal(b) => restore_counters(&mut b.table, r, "bimodal table size")?,
            Impl::GShare(g) => g.restore_state(r)?,
            Impl::Local(l) => l.restore_state(r)?,
            Impl::Combining(c) => {
                restore_counters(&mut c.selector, r, "combining selector size")?;
                c.local.restore_state(r)?;
                c.global.restore_state(r)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut DirPredictor, pc: u64, pattern: &[bool], reps: usize) {
        for _ in 0..reps {
            for &t in pattern {
                p.update(pc, t);
            }
        }
    }

    #[test]
    fn static_predictors() {
        let t = DirPredictor::new(DirKind::Taken);
        let n = DirPredictor::new(DirKind::NotTaken);
        assert!(t.predict(0x4000));
        assert!(!n.predict(0x4000));
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = DirPredictor::new(DirKind::Bimodal { entries: 2048 });
        train(&mut p, 0x1000, &[true], 4);
        assert!(p.predict(0x1000));
        train(&mut p, 0x2000, &[false], 4);
        assert!(!p.predict(0x2000));
        // Independent entries.
        assert!(p.predict(0x1000));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = DirPredictor::new(DirKind::GShare {
            entries: 4096,
            history_bits: 12,
        });
        // Alternating T/N is unlearnable by bimodal but trivial for
        // history-based predictors.
        let mut correct = 0;
        let mut next = true;
        for i in 0..2000 {
            if i >= 1000 && p.predict(0x1000) == next {
                correct += 1;
            }
            p.update(0x1000, next);
            next = !next;
        }
        assert!(
            correct > 950,
            "gshare should learn T/N/T/N, got {correct}/1000"
        );
    }

    #[test]
    fn local_learns_short_loop() {
        let mut p = DirPredictor::new(DirKind::Local {
            l1_entries: 1024,
            history_bits: 10,
            counter_bits: 3,
        });
        // A loop branch taken 3 times then not taken, repeatedly.
        let pattern = [true, true, true, false];
        let mut correct = 0;
        let mut total = 0;
        for rep in 0..600 {
            for &t in &pattern {
                if rep >= 300 {
                    total += 1;
                    if p.predict(0x1000) == t {
                        correct += 1;
                    }
                }
                p.update(0x1000, t);
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "local should learn a 4-iteration loop, got {correct}/{total}"
        );
    }

    #[test]
    fn combining_beats_components_on_mixed_workload() {
        // Branch A: biased taken. Branch B: depends on global history.
        let mut comb = DirPredictor::new(DirKind::Combining);
        let mut correct = 0;
        let mut total = 0;
        let mut flip = false;
        for i in 0..4000 {
            // Branch A at 0x1000, strongly biased.
            if i >= 2000 {
                total += 1;
                if comb.predict(0x1000) {
                    correct += 1;
                }
            }
            comb.update(0x1000, true);
            // Branch B at 0x2000 alternates.
            flip = !flip;
            if i >= 2000 {
                total += 1;
                if comb.predict(0x2000) == flip {
                    correct += 1;
                }
            }
            comb.update(0x2000, flip);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "combining accuracy {acc} too low");
    }

    #[test]
    fn table1_kind_is_combining() {
        assert_eq!(DirKind::table1(), DirKind::Combining);
    }
}
