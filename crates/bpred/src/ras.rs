//! Return-address stack (Table 1: 32 entries).
//!
//! The RAS is updated speculatively at fetch (calls push, returns pop),
//! so it must be repairable after a branch misprediction. We use the
//! classic top-of-stack checkpoint: recovery restores the stack pointer
//! and the entry it points at, which repairs all single-level damage.

/// A checkpoint of the RAS taken when a branch is fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasCheckpoint {
    top: usize,
    top_value: u64,
}

/// Circular return-address stack.
///
/// # Example
///
/// ```
/// use nwo_bpred::Ras;
///
/// let mut ras = Ras::new(32);
/// ras.push(0x1004);
/// assert_eq!(ras.pop(), Some(0x1004));
/// ```
#[derive(Debug, Clone)]
pub struct Ras {
    entries: Vec<u64>,
    /// Index of the next free slot; `top - 1` is the top of stack.
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS needs at least one entry");
        Ras {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (a call was fetched).
    pub fn push(&mut self, addr: u64) {
        self.entries[self.top] = addr;
        self.top = (self.top + 1) % self.entries.len();
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (a return was fetched).
    /// Returns `None` when the stack has underflowed.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(self.entries[self.top])
    }

    /// Takes a checkpoint for misprediction repair.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            top: self.top,
            top_value: self.entries[(self.top + self.entries.len() - 1) % self.entries.len()],
        }
    }

    /// Restores a checkpoint taken earlier.
    pub fn restore(&mut self, cp: RasCheckpoint) {
        self.top = cp.top;
        let len = self.entries.len();
        self.entries[(cp.top + len - 1) % len] = cp.top_value;
        // Depth is approximate after deep wrap-around damage; clamp to
        // something sane. A conservative non-zero depth only risks a
        // mispredicted return target, never a correctness problem.
        self.depth = self.depth.max(1).min(len);
    }

    /// Current stack depth (saturates at capacity).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl nwo_ckpt::Checkpointable for Ras {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_u64(self.entries.len() as u64);
        w.put_u64(self.top as u64);
        w.put_u64(self.depth as u64);
        for &e in &self.entries {
            w.put_u64(e);
        }
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        let cap = r.take_u64("ras capacity")?;
        if cap != self.entries.len() as u64 {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "ras capacity",
                found: cap,
                expected: self.entries.len() as u64,
            });
        }
        let top = r.take_u64("ras top")?;
        let depth = r.take_u64("ras depth")?;
        if top >= cap || depth > cap {
            return Err(nwo_ckpt::CkptError::Malformed(format!(
                "ras top {top} / depth {depth} out of range for capacity {cap}"
            )));
        }
        self.top = top as usize;
        self.depth = depth as usize;
        for e in self.entries.iter_mut() {
            *e = r.take_u64("ras entry")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(8);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn wraps_around_capacity() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        // Depth saturated at 2, so the third pop sees stale data or
        // underflow; capacity-2 stacks lose deep frames by design.
    }

    #[test]
    fn checkpoint_restores_after_wrong_path_pop() {
        let mut ras = Ras::new(8);
        ras.push(0x100);
        ras.push(0x200);
        let cp = ras.checkpoint();
        // Wrong path: pops the top, pushes garbage.
        assert_eq!(ras.pop(), Some(0x200));
        ras.push(0xdead);
        ras.restore(cp);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
    }

    #[test]
    fn checkpoint_restores_after_wrong_path_push() {
        let mut ras = Ras::new(8);
        ras.push(0x100);
        let cp = ras.checkpoint();
        ras.push(0xbad);
        ras.restore(cp);
        assert_eq!(ras.pop(), Some(0x100));
    }

    #[test]
    fn depth_tracks_saturating() {
        let mut ras = Ras::new(4);
        assert_eq!(ras.depth(), 0);
        for i in 0..6 {
            ras.push(i);
        }
        assert_eq!(ras.depth(), 4);
    }
}
