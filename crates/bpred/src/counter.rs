//! Saturating counters, the building block of every table-based predictor.

/// An n-bit saturating counter (1 ≤ n ≤ 8).
///
/// The prediction is "taken" when the counter is in the upper half of its
/// range, the classic Smith-counter rule.
///
/// # Example
///
/// ```
/// use nwo_bpred::SatCounter;
///
/// let mut c = SatCounter::new(2); // starts weakly not-taken (01)
/// assert!(!c.taken());
/// c.train(true);
/// assert!(c.taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates an `bits`-bit counter initialised to the weakly-not-taken
    /// value (one below the midpoint).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn new(bits: u32) -> SatCounter {
        assert!((1..=8).contains(&bits), "counter width out of range");
        let max = if bits == 8 { u8::MAX } else { (1 << bits) - 1 };
        SatCounter {
            value: (max / 2),
            max,
        }
    }

    /// Current raw value.
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Sets the raw value, clamped to the counter's range (used by
    /// checkpoint restore).
    pub(crate) fn set_value(&mut self, value: u8) {
        self.value = value.min(self.max);
    }

    /// The taken/not-taken prediction.
    #[inline]
    pub fn taken(&self) -> bool {
        self.value > self.max / 2
    }

    /// Strengthens or weakens the counter toward the observed outcome.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.value = self.value.saturating_add(1).min(self.max);
        } else {
            self.value = self.value.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SatCounter::new(2);
        assert_eq!(c.value(), 1);
        assert!(!c.taken());
        c.train(true); // 2: weakly taken
        assert!(c.taken());
        c.train(true); // 3: strongly taken
        c.train(true); // saturates at 3
        assert_eq!(c.value(), 3);
        c.train(false); // 2: still taken
        assert!(c.taken());
        c.train(false); // 1: not taken
        assert!(!c.taken());
        c.train(false);
        c.train(false); // saturates at 0
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut c = SatCounter::new(2);
        c.train(true);
        c.train(true); // strongly taken
        c.train(false); // one not-taken does not flip the prediction
        assert!(c.taken());
    }

    #[test]
    fn three_bit_counter_range() {
        let mut c = SatCounter::new(3);
        assert_eq!(c.value(), 3);
        assert!(!c.taken());
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn one_bit_counter_is_last_outcome() {
        let mut c = SatCounter::new(1);
        c.train(true);
        assert!(c.taken());
        c.train(false);
        assert!(!c.taken());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_bits_rejected() {
        SatCounter::new(0);
    }
}
