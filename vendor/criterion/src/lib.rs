#![warn(missing_docs)]

//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The workspace must build with no network access, so this crate
//! provides the subset of the criterion API our bench targets use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `throughput`, `sample_size`, `bench_function`, `Bencher::iter` and
//! `iter_batched`) with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Numbers it prints are indicative,
//! not rigorous — good enough to spot order-of-magnitude regressions
//! while keeping `cargo bench` runnable offline.

use std::time::{Duration, Instant};

/// Work-per-iteration declaration, used to derive a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; ignored by this stand-in.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement: None,
        };
        f(&mut bencher);
        let (iters, elapsed) = bencher
            .measurement
            .expect("benchmark closure must call iter/iter_batched");
        let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / (ns_per_iter / 1e9)),
            Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / (ns_per_iter / 1e9)),
        });
        println!(
            "{}/{:<24} {:>14.0} ns/iter ({} iters){}",
            self.name,
            id,
            ns_per_iter,
            iters,
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group (the stand-in keeps no summary state).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, repeating it up to the sample size (bounded to
    /// roughly a second of wall clock).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine()); // warm-up, untimed
        let budget = Duration::from_secs(1);
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < self.sample_size as u64 {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() > budget {
                break;
            }
        }
        self.measurement = Some((iters, start.elapsed()));
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        let budget = Duration::from_secs(1);
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while iters < self.sample_size as u64 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
            if elapsed > budget {
                break;
            }
        }
        self.measurement = Some((iters, elapsed));
    }
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4)).sample_size(3);
        let mut calls = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // warm-up + up to sample_size measured iterations
        assert!((2..=4).contains(&calls), "calls = {calls}");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("b", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
