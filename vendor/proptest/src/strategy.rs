//! Core [`Strategy`] trait and the combinators the test suite uses.

use std::marker::PhantomData;

use crate::rng::TestRng;

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for an [`Arbitrary`] type: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128) % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                ((lo as i128) + (rng.next_u64() as i128) % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let b = (0u8..=255).generate(&mut rng);
            let _ = b; // full range: any value is fine
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::from_seed(9);
        let s = (0u64..4).prop_map(|v| v * 100);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 100, 0);
        }
        assert_eq!(Just(42).generate(&mut rng), 42);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::from_seed(11);
        let u = Union::new(vec![Just(1u64).boxed(), Just(2u64).boxed()]);
        let draws: Vec<u64> = (0..64).map(|_| u.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }
}
