//! One-stop imports mirroring `proptest::prelude`.

pub use crate::strategy::{any, Just, Strategy};
pub use crate::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Mirrors `proptest::prelude::prop`, the module-style entry point
/// (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::{collection, sample};
}
