//! `prop::sample` — choosing from explicit value lists.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Uniformly selects one of the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_only_listed_values() {
        let mut rng = TestRng::from_seed(5);
        let s = select(vec!['a', 'b', 'c']);
        for _ in 0..100 {
            assert!(['a', 'b', 'c'].contains(&s.generate(&mut rng)));
        }
    }
}
