//! `prop::collection` — vector strategies.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Anything usable as the size argument of [`vec`]: an exact `usize`
/// or a `usize` range.
pub trait SizeRange {
    /// Picks a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.clone().generate(rng)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.clone().generate(rng)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `R`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// `prop::collection::vec(element, size)` — a vector of generated
/// elements whose length is drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(3);
        assert_eq!(vec(0u64..10, 8usize).generate(&mut rng).len(), 8);
        for _ in 0..100 {
            let v = vec(0u64..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
