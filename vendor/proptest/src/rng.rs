//! Deterministic RNG: splitmix64 seeded from the test's module path.

/// Deterministic per-test random number generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from the (FNV-1a hashed) test name, XORed
    /// with `PROPTEST_RNG_SEED` when set.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            seed ^= extra;
        }
        TestRng { state: seed }
    }

    /// Seeds the generator directly (used by this crate's own tests).
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::for_test("one");
        let mut b = TestRng::for_test("two");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
