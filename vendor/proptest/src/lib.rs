#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The real `proptest` lives on crates.io, but this workspace must build
//! and test with **no network access**, so this crate re-implements the
//! small slice of the API the test suite actually uses:
//!
//! - the [`proptest!`] block macro (with `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - [`prop_oneof!`] and [`Union`],
//! - [`any`], [`Just`], integer-range strategies, tuple strategies,
//! - `prop::collection::vec` and `prop::sample::select`,
//!
//! all driven by a deterministic splitmix64 RNG seeded from the test's
//! module path, so failures reproduce exactly from run to run. Shrinking
//! is intentionally not implemented; set `PROPTEST_CASES` to change the
//! default case count or `PROPTEST_RNG_SEED` to explore new schedules.

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;

mod rng;

pub use rng::TestRng;
pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy, Union};

/// Per-`proptest!` block configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        ProptestConfig { cases }
    }
}

/// Declares property tests: each contained
/// `#[test] fn name(arg in strategy, ...) { body }` item becomes a
/// zero-argument test running `body` once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Picks uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
