#![warn(missing_docs)]

//! # nwo — Dynamically Exploiting Narrow Width Operands
//!
//! A full reproduction of Brooks & Martonosi, *"Dynamically Exploiting
//! Narrow Width Operands to Improve Processor Power and Performance"*
//! (HPCA 1999), as a Rust workspace:
//!
//! * [`isa`] — a 64-bit Alpha-flavoured RISC ISA, assembler and
//!   functional emulator;
//! * [`mem`] — main memory, caches and TLBs (the Table 1 hierarchy);
//! * [`bpred`] — branch predictors (the Table 1 combining predictor),
//!   BTB and return-address stack;
//! * [`core`] — the paper's contribution: narrow-width detection, clock
//!   gating decisions, operation packing and replay packing;
//! * [`power`] — the Table 4 power model and gating accounting;
//! * [`sim`] — the cycle-level out-of-order (RUU/LSQ) simulator;
//! * [`verify`] — the lockstep architectural oracle and deterministic
//!   fault injection (see `docs/verification.md`);
//! * [`workloads`] — fourteen SPECint95- and MediaBench-like kernels.
//!
//! # Quick start
//!
//! ```
//! use nwo::sim::{SimConfig, Simulator};
//! use nwo::isa::assemble;
//!
//! let program = assemble("main: li t0, 17\n addq t0, 2, t0\n outq t0\n halt")?;
//! let mut sim = Simulator::new(&program, SimConfig::default());
//! let report = sim.run(1_000)?;
//! assert_eq!(report.out_quads, vec![19]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use nwo_bpred as bpred;
pub use nwo_core as core;
pub use nwo_isa as isa;
pub use nwo_mem as mem;
pub use nwo_power as power;
pub use nwo_sim as sim;
pub use nwo_verify as verify;
pub use nwo_workloads as workloads;
