//! Suite overview: run every benchmark kernel on the functional
//! emulator, verify its output against the reference implementation,
//! and print dynamic instruction counts.
//!
//! ```sh
//! cargo run --release --example suite_overview [scale]
//! ```

use nwo::isa::Emulator;
use nwo::workloads::full_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0);
    println!("benchmark   suite       dyn.instrs   static   verified");
    for bench in full_suite(scale) {
        let mut emu = Emulator::new(&bench.program);
        emu.run(2_000_000_000)?;
        let ok = emu.outq() == bench.expected.as_slice();
        println!(
            "{:<11} {:<11} {:>10}   {:>6}   {}",
            bench.name,
            bench.suite.to_string(),
            emu.icount(),
            bench.program.len(),
            if ok { "ok" } else { "MISMATCH" }
        );
        assert!(ok, "{} diverged from its reference", bench.name);
    }
    Ok(())
}
