//! Quickstart: assemble a small program, run it on the cycle-level
//! out-of-order simulator, and inspect the narrow-width statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nwo::isa::assemble;
use nwo::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little checksum loop over narrow values: exactly the kind of
    // code the paper's hardware exploits.
    let program = assemble(
        r#"
        main:
            clr  t0            ; checksum
            clr  t1            ; i
            li   t2, 1000
        loop:
            and  t1, 255, t3   ; a narrow byte-sized value
            mulq t3, 3, t4
            addq t0, t4, t0
            xor  t0, t3, t0
            addq t1, 1, t1
            cmplt t1, t2, t5
            bne  t5, loop
            outq t0
            halt
    "#,
    )?;

    let mut sim = Simulator::new(&program, SimConfig::default());
    let report = sim.run(1_000_000)?;

    println!("program output: {:?}", report.out_quads);
    println!();
    println!("{report}");
    println!(
        "operations with both operands <= 16 bits: {:.1}%",
        report.stats.breakdown.narrow16_total_fraction() * 100.0
    );
    println!(
        "integer-unit power saved by operand gating: {:.1}%",
        report.power.reduction_percent
    );
    Ok(())
}
