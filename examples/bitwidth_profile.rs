//! Bitwidth profiling (paper Figure 1): run a benchmark and print the
//! cumulative operand-width distribution as an ASCII chart.
//!
//! ```sh
//! cargo run --release --example bitwidth_profile [benchmark] [scale]
//! ```

use nwo::sim::{SimConfig, Simulator};
use nwo::workloads::{benchmark, experiment_scale, BENCHMARK_NAMES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "compress".to_string());
    let scale: u32 = match args.next() {
        Some(s) => s.parse()?,
        None => experiment_scale(&name),
    };
    let Some(bench) = benchmark(&name, scale) else {
        eprintln!("unknown benchmark `{name}`; known: {BENCHMARK_NAMES:?}");
        std::process::exit(2);
    };

    let mut sim = Simulator::new(&bench.program, SimConfig::default());
    let report = sim.run(u64::MAX)?;
    assert_eq!(report.out_quads, bench.expected, "benchmark diverged");

    let hist = &report.stats.width_committed;
    println!(
        "{name} (scale {scale}): {} committed instructions, {} with two operands",
        report.stats.committed,
        hist.total()
    );
    println!();
    println!("cumulative % of operations with both operands <= N bits:");
    for bits in 1..=64u32 {
        let frac = hist.cumulative(bits);
        let bar = "#".repeat((frac * 50.0).round() as usize);
        // Print every width up to 36, then the sparse tail.
        if bits <= 36 || bits % 8 == 0 {
            println!("{bits:>3} | {bar:<50} {:5.1}%", frac * 100.0);
        }
    }
    println!();
    println!(
        "narrow at 16 bits: {:.1}%   narrow at 33 bits: {:.1}%",
        hist.cumulative(16) * 100.0,
        hist.cumulative(33) * 100.0
    );
    println!("(the jump at 33 bits is heap/stack address arithmetic — Figure 1)");
    Ok(())
}
