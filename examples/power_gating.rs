//! Operand-based clock gating on real kernels (paper Section 4).
//!
//! Runs one SPEC-like and one media kernel through the cycle-level
//! simulator and prints the Figure 6/7-style power breakdown.
//!
//! ```sh
//! cargo run --release --example power_gating
//! ```

use nwo::core::GatingConfig;
use nwo::sim::{SimConfig, Simulator};
use nwo::workloads::full_suite;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for bench in full_suite(0)
        .into_iter()
        .filter(|b| b.name == "ijpeg" || b.name == "gsm-enc")
    {
        let config = SimConfig::default().with_gating(GatingConfig::default());
        let mut sim = Simulator::new(&bench.program, config);
        let start = Instant::now();
        let report = sim.run(u64::MAX)?;
        let elapsed = start.elapsed();
        assert_eq!(report.out_quads, bench.expected, "{} diverged", bench.name);

        println!("=== {} ===", bench.name);
        println!(
            "  {} instructions, {} cycles (ipc {:.2}), simulated in {:.2}s ({:.0}k inst/s)",
            report.stats.committed,
            report.stats.cycles,
            report.ipc(),
            elapsed.as_secs_f64(),
            report.stats.committed as f64 / elapsed.as_secs_f64() / 1000.0
        );
        println!(
            "  gated at 16 bits: {:.1}% of ops, at 33 bits: {:.1}%",
            report.power.gated16_fraction * 100.0,
            report.power.gated33_fraction * 100.0
        );
        println!(
            "  power/cycle: baseline {:.0} mW, gated {:.0} mW  ->  {:.1}% reduction",
            report.power.baseline_mw_per_cycle,
            report.power.gated_mw_per_cycle,
            report.power.reduction_percent
        );
        println!(
            "  saved\u{40}16 {:.0} mW, saved\u{40}33 {:.0} mW, overhead {:.1} mW, net {:.0} mW",
            report.power.saved16_mw_per_cycle,
            report.power.saved33_mw_per_cycle,
            report.power.extra_mw_per_cycle,
            report.power.net_saved_mw_per_cycle
        );
        println!(
            "  gated ops fed directly by a load: {:.1}%",
            report.stats.load_operand_fraction() * 100.0
        );
        println!();
    }
    Ok(())
}
