//! Pipeline tracing: watch individual instructions flow through fetch,
//! dispatch, issue, writeback and commit — and see operation packing
//! share ALUs in real time.
//!
//! ```sh
//! cargo run --release --example pipeline_trace
//! ```

use nwo::core::PackConfig;
use nwo::isa::assemble;
use nwo::sim::{SimConfig, Simulator, TraceRecord};

fn print_trace(title: &str, trace: &[TraceRecord]) {
    println!("--- {title} ---");
    println!(
        "{:<10} {:<22} {:>5} {:>5} {:>5} {:>5} {:>5}  flags",
        "pc", "instruction", "F", "D", "I", "X", "C"
    );
    let base = trace.first().map(|t| t.fetched_at).unwrap_or(0);
    for t in trace {
        println!(
            "{:<#10x} {:<22} {:>5} {:>5} {:>5} {:>5} {:>5}  {}{}",
            t.pc,
            t.instr.to_string(),
            t.fetched_at - base,
            t.dispatched_at - base,
            t.issued_at - base,
            t.completed_at - base,
            t.committed_at - base,
            if t.packed { "P" } else { "" },
            if t.replayed { "R" } else { "" },
        );
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four independent narrow adds, then a combining tree: the packed
    // machine issues the adds in shared ALU lanes.
    let program = assemble(
        r#"
        main:
            li   t0, 3
            li   t1, 5
            li   t2, 7
            li   t3, 9
        loop:
            addq t0, 1, t0
            addq t1, 1, t1
            addq t2, 1, t2
            addq t3, 1, t3
            addq t0, t1, t4
            addq t2, t3, t5
            addq t4, t5, v0
            cmplt v0, 200, t6
            bne  t6, loop
            outq v0
            halt
    "#,
    )?;

    let mut base = Simulator::new(&program, SimConfig::default().with_trace(24));
    let base_report = base.run(u64::MAX)?;
    print_trace("baseline (4-issue, no packing)", &base.trace());

    let mut packed = Simulator::new(
        &program,
        SimConfig::default()
            .with_packing(PackConfig::default())
            .with_trace(24),
    );
    let packed_report = packed.run(u64::MAX)?;
    print_trace(
        "operation packing (P = issued in a shared ALU)",
        &packed.trace(),
    );

    println!(
        "baseline: {} cycles   packed: {} cycles   groups formed: {}",
        base_report.stats.cycles, packed_report.stats.cycles, packed_report.stats.pack.groups
    );
    assert_eq!(base_report.out_quads, packed_report.out_quads);
    Ok(())
}
