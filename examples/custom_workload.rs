//! Bring-your-own workload: write a program in the `nwo` assembly
//! language, run it under every machine configuration, and compare.
//!
//! The program below is a little fixed-point FIR filter — exactly the
//! kind of 16-bit kernel the paper's mechanisms target.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use nwo::core::{GatingConfig, PackConfig};
use nwo::isa::{assemble, Emulator};
use nwo::sim::{SimConfig, Simulator};

const FIR: &str = r#"
    .data
coeff:
    .word 3, -5, 12, 24, 12, -5, 3, 0      ; symmetric low-pass taps
signal:
    .space 4096                             ; filled by the init loop
    .text
main:
    ; ---- synthesise a 2048-sample triangle wave in place ----
    la   a0, signal
    li   t0, 0
    li   t1, 2048
mkwave:
    and  t0, 255, t2
    subq t2, 128, t2                        ; -128..127 ramp
    sll  t0, 1, t3
    addq a0, t3, t3
    stw  t2, 0(t3)
    addq t0, 1, t0
    cmplt t0, t1, t4
    bne  t4, mkwave
    ; ---- 8-tap FIR over the signal ----
    la   a1, coeff
    clr  s0                                 ; output checksum
    li   t0, 8                              ; position
fir:
    clr  t1                                 ; accumulator
    clr  t2                                 ; tap
tap:
    subq t0, t2, t3
    sll  t3, 1, t3
    addq a0, t3, t3
    ldwu t4, 0(t3)
    sextw t4, t4                            ; x[n-k]
    sll  t2, 1, t5
    addq a1, t5, t5
    ldwu t6, 0(t5)
    sextw t6, t6                            ; h[k]
    mulq t4, t6, t4
    addq t1, t4, t1
    addq t2, 1, t2
    cmplt t2, 8, t7
    bne  t7, tap
    sra  t1, 6, t1                          ; rescale
    addq s0, t1, s0
    addq t0, 1, t0
    li   t8, 2048
    cmplt t0, t8, t7
    bne  t7, fir
    outq s0
    halt
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(FIR)?;
    println!(
        "assembled {} instructions, {} data bytes",
        program.len(),
        program.data.len()
    );

    // Functional reference first.
    let mut emu = Emulator::new(&program);
    emu.run(10_000_000)?;
    let expected = emu.outq().to_vec();
    println!(
        "emulator output: {expected:?} in {} instructions",
        emu.icount()
    );
    println!();

    println!(
        "{:<22} {:>9} {:>7} {:>9} {:>10}",
        "machine", "cycles", "ipc", "power mW", "packed ops"
    );
    let machines: Vec<(&str, SimConfig)> = vec![
        ("baseline", SimConfig::default()),
        (
            "clock gating",
            SimConfig::default().with_gating(GatingConfig::default()),
        ),
        (
            "operation packing",
            SimConfig::default().with_packing(PackConfig::default()),
        ),
        (
            "replay packing",
            SimConfig::default().with_packing(PackConfig::with_replay()),
        ),
        ("8-issue/8-ALU", SimConfig::default().with_eight_issue()),
    ];
    for (name, config) in machines {
        let mut sim = Simulator::new(&program, config);
        let report = sim.run(u64::MAX)?;
        assert_eq!(report.out_quads, expected, "{name} diverged");
        println!(
            "{:<22} {:>9} {:>7.2} {:>9.1} {:>10}",
            name,
            report.stats.cycles,
            report.ipc(),
            report.power.gated_mw_per_cycle,
            report.stats.pack.packed_ops
        );
    }
    Ok(())
}
