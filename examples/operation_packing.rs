//! Operation packing speedups (paper Section 5).
//!
//! Compares baseline, packed, replay-packed, and 8-issue machines on
//! every kernel and prints Figure 10/11-style numbers.
//!
//! ```sh
//! cargo run --release --example operation_packing [scale]
//! ```

use nwo::core::PackConfig;
use nwo::sim::{SimConfig, SimReport, Simulator};
use nwo::workloads::full_suite;

fn run(bench: &nwo::workloads::Benchmark, config: SimConfig) -> SimReport {
    let mut sim = Simulator::new(&bench.program, config);
    let report = sim.run(u64::MAX).expect("benchmark runs to completion");
    assert_eq!(report.out_quads, bench.expected, "{} diverged", bench.name);
    report
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0);
    println!(
        "{:<11} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "base cyc", "base", "pack", "+replay", "8-issue", "packed%"
    );
    for bench in full_suite(scale) {
        let base = run(&bench, SimConfig::default());
        let pack = run(
            &bench,
            SimConfig::default().with_packing(PackConfig::default()),
        );
        let replay = run(
            &bench,
            SimConfig::default().with_packing(PackConfig::with_replay()),
        );
        let eight = run(&bench, SimConfig::default().with_eight_issue());
        let speedup =
            |r: &SimReport| (base.stats.cycles as f64 / r.stats.cycles as f64 - 1.0) * 100.0;
        println!(
            "{:<11} {:>9} {:>7.2}  {:>+7.2}% {:>+7.2}% {:>+7.2}% {:>7.1}%",
            bench.name,
            base.stats.cycles,
            base.ipc(),
            speedup(&pack),
            speedup(&replay),
            speedup(&eight),
            pack.stats.pack.packed_ops as f64 / pack.stats.issued.max(1) as f64 * 100.0,
        );
    }
    Ok(())
}
